//! Deterministic fault injection for chaos testing the daemon's I/O edges.
//!
//! A [`FaultPlan`] schedules failures at the boundaries where a real
//! deployment actually breaks — durable-store reads and writes, torn spill
//! files, slow sockets, worker panics — without any randomness at run time:
//! each injection site counts its operations and fires on a fixed residue of
//! that count, with the residue (the *phase*) derived from the plan's seed.
//! Two runs with the same plan and the same per-site operation counts inject
//! exactly the same faults, which is what lets the chaos suite
//! (`crates/serve/tests/chaos.rs`) assert bit-identical recovery instead of
//! "usually recovers".
//!
//! Plans come from `--fault-plan` on the daemon CLI or the `HTC_FAULT`
//! environment variable (flag wins).  An invalid spec warns **once** on
//! stderr and is then ignored — the same contract as `HTC_NUM_THREADS` — so
//! a typo'd plan cannot silently run a production daemon with faults half
//! configured.
//!
//! ## Spec grammar
//!
//! Comma-separated `key=value` items:
//!
//! ```text
//! seed=7,store_write_err=5,store_read_err=4,torn_write=3@64,slow_socket=2@50,panic=9
//! ```
//!
//! * `seed=N` — phase seed (default 0).
//! * `store_read_err=N` — every Nth durable-store artifact read fails.
//! * `store_write_err=N` — every Nth durable-store spill fails outright.
//! * `torn_write=N@B` — every Nth spill is truncated at byte `B` **after**
//!   landing (simulating a torn file the atomic rename normally prevents);
//!   `@B` defaults to 16.
//! * `slow_socket=N@MS` — every Nth request stalls `MS` milliseconds before
//!   being served; `@MS` defaults to 50.
//! * `panic=N` — every Nth align request panics inside the handler.
//!
//! Client-side stall phases — consulted by the chaos harness's *clients*
//! (and `serve_load --slow-writer`), not the daemon, to decide which
//! exchange stalls and for how long.  They exercise the server's
//! slow-client defenses (head deadline, mid-body stall cap, write-progress
//! teardown) on a deterministic schedule:
//!
//! * `stall_header=N@MS` — every Nth request drips its header bytes with
//!   `MS` milliseconds between them (slowloris); `@MS` defaults to 100.
//! * `stall_body=N@MS` — every Nth request sends its head, then stalls
//!   `MS` milliseconds mid-body; `@MS` defaults to 100.
//! * `stall_read=N@MS` — every Nth request stops reading the response for
//!   `MS` milliseconds (a stalled reader on a streamed body); `@MS`
//!   defaults to 100.

use htc_metrics::Counter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What an injected durable-store write should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Write normally.
    None,
    /// Fail the spill with an I/O error.
    Fail,
    /// Let the spill land, then truncate the file at this byte offset.
    Torn(usize),
}

/// One injection site: a period, a seed-derived phase, and an op counter.
#[derive(Debug, Default)]
struct Site {
    /// Fire every `period`th operation; 0 disables the site.
    period: u64,
    phase: u64,
    ops: AtomicU64,
}

impl Site {
    fn new(period: u64, seed: u64, tag: &str) -> Self {
        let phase = if period == 0 {
            0
        } else {
            // FNV-1a over the seed bytes and the site tag: different sites
            // fire on different residues of the same seed, and changing the
            // seed shifts every site's schedule deterministically.
            const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
            const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
            let mut h = FNV_OFFSET;
            for b in seed.to_le_bytes().iter().chain(tag.as_bytes()) {
                h = (h ^ *b as u64).wrapping_mul(FNV_PRIME);
            }
            h % period
        };
        Self {
            period,
            phase,
            ops: AtomicU64::new(0),
        }
    }

    /// Counts one operation; true when this one is scheduled to fail.  The
    /// fetch-and-add makes the *number* of injections over N operations exact
    /// under concurrency (which operation fails may vary with interleaving,
    /// but tests that drive the site sequentially get full determinism).
    fn fire(&self) -> bool {
        if self.period == 0 {
            return false;
        }
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        n % self.period == self.phase
    }
}

/// A parsed, seeded fault-injection schedule.  Shared (`Arc`) between the
/// server, its durable store, and `/stats`.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    store_read: Site,
    store_write: Site,
    torn_write: Site,
    torn_write_at: usize,
    slow_socket: Site,
    slow_socket_ms: u64,
    panic: Site,
    stall_header: Site,
    stall_header_ms: u64,
    stall_body: Site,
    stall_body_ms: u64,
    stall_read: Site,
    stall_read_ms: u64,
    /// Total faults injected so far (surfaced as `faults_injected` in
    /// `/stats`).
    pub injected: Counter,
}

impl FaultPlan {
    /// Parses a plan spec (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut store_read = 0u64;
        let mut store_write = 0u64;
        let mut torn = (0u64, 16usize);
        let mut slow = (0u64, 50u64);
        let mut panic_every = 0u64;
        let mut stall_header = (0u64, 100u64);
        let mut stall_body = (0u64, 100u64);
        let mut stall_read = (0u64, 100u64);
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("fault item {item:?} is not key=value"))?;
            let parse_u64 = |what: &str, v: &str| -> Result<u64, String> {
                v.trim()
                    .parse::<u64>()
                    .map_err(|e| format!("bad {what} value {v:?}: {e}"))
            };
            // `N@X` splits a period from its site parameter.
            let (period_str, param) = match value.split_once('@') {
                Some((n, p)) => (n, Some(p)),
                None => (value, None),
            };
            match key.trim() {
                "seed" => seed = parse_u64("seed", value)?,
                "store_read_err" => store_read = parse_u64("store_read_err", value)?,
                "store_write_err" => store_write = parse_u64("store_write_err", value)?,
                "torn_write" => {
                    torn.0 = parse_u64("torn_write", period_str)?;
                    if let Some(p) = param {
                        torn.1 = parse_u64("torn_write offset", p)? as usize;
                    }
                }
                "slow_socket" => {
                    slow.0 = parse_u64("slow_socket", period_str)?;
                    if let Some(p) = param {
                        slow.1 = parse_u64("slow_socket ms", p)?;
                    }
                }
                "panic" => panic_every = parse_u64("panic", value)?,
                "stall_header" => {
                    stall_header.0 = parse_u64("stall_header", period_str)?;
                    if let Some(p) = param {
                        stall_header.1 = parse_u64("stall_header ms", p)?;
                    }
                }
                "stall_body" => {
                    stall_body.0 = parse_u64("stall_body", period_str)?;
                    if let Some(p) = param {
                        stall_body.1 = parse_u64("stall_body ms", p)?;
                    }
                }
                "stall_read" => {
                    stall_read.0 = parse_u64("stall_read", period_str)?;
                    if let Some(p) = param {
                        stall_read.1 = parse_u64("stall_read ms", p)?;
                    }
                }
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        Ok(FaultPlan {
            seed,
            store_read: Site::new(store_read, seed, "store_read"),
            store_write: Site::new(store_write, seed, "store_write"),
            torn_write: Site::new(torn.0, seed, "torn_write"),
            torn_write_at: torn.1,
            slow_socket: Site::new(slow.0, seed, "slow_socket"),
            slow_socket_ms: slow.1,
            panic: Site::new(panic_every, seed, "panic"),
            stall_header: Site::new(stall_header.0, seed, "stall_header"),
            stall_header_ms: stall_header.1,
            stall_body: Site::new(stall_body.0, seed, "stall_body"),
            stall_body_ms: stall_body.1,
            stall_read: Site::new(stall_read.0, seed, "stall_read"),
            stall_read_ms: stall_read.1,
            injected: Counter::new(),
        })
    }

    /// Reads `HTC_FAULT` from the environment.  An invalid spec warns once on
    /// stderr and returns `None` — the daemon runs fault-free rather than
    /// with a half-parsed plan.
    pub fn from_env() -> Option<Arc<FaultPlan>> {
        let value = std::env::var("HTC_FAULT").ok()?;
        match FaultPlan::parse(&value) {
            Ok(plan) => Some(Arc::new(plan)),
            Err(msg) => {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!("warning: HTC_FAULT={value:?} ignored: {msg}");
                });
                None
            }
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Consult before a durable-store artifact read.
    pub fn store_read_fault(&self) -> bool {
        let fire = self.store_read.fire();
        if fire {
            self.injected.inc();
        }
        fire
    }

    /// Consult before a durable-store spill.
    pub fn store_write_fault(&self) -> WriteFault {
        // The torn-write site is consulted first so plans that set both see
        // torn files *and* hard failures on disjoint schedules.
        if self.torn_write.fire() {
            self.injected.inc();
            return WriteFault::Torn(self.torn_write_at);
        }
        if self.store_write.fire() {
            self.injected.inc();
            return WriteFault::Fail;
        }
        WriteFault::None
    }

    /// Consult once per request; `Some(d)` means stall the socket for `d`.
    pub fn socket_delay(&self) -> Option<Duration> {
        if self.slow_socket.fire() {
            self.injected.inc();
            Some(Duration::from_millis(self.slow_socket_ms))
        } else {
            None
        }
    }

    /// Consult once per align request; true means the handler should panic
    /// (exercising the worker-pool panic recovery path).
    pub fn should_panic(&self) -> bool {
        let fire = self.panic.fire();
        if fire {
            self.injected.inc();
        }
        fire
    }

    /// Client-side: consult once per request; `Some(d)` means drip the
    /// request header with `d` between bytes (slowloris).
    pub fn stall_header_delay(&self) -> Option<Duration> {
        if self.stall_header.fire() {
            self.injected.inc();
            Some(Duration::from_millis(self.stall_header_ms))
        } else {
            None
        }
    }

    /// Client-side: consult once per request; `Some(d)` means stall `d`
    /// mid-body after the head has been sent.
    pub fn stall_body_delay(&self) -> Option<Duration> {
        if self.stall_body.fire() {
            self.injected.inc();
            Some(Duration::from_millis(self.stall_body_ms))
        } else {
            None
        }
    }

    /// Client-side: consult once per request; `Some(d)` means stop reading
    /// the response for `d` (a stalled reader on a streamed body).
    pub fn stall_read_delay(&self) -> Option<Duration> {
        if self.stall_read.fire() {
            self.injected.inc();
            Some(Duration::from_millis(self.stall_read_ms))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_spec() {
        let plan = FaultPlan::parse(
            "seed=7, store_write_err=5,store_read_err=4,torn_write=3@64,slow_socket=2@25,panic=9,\
             stall_header=6@40,stall_body=7@60,stall_read=8",
        )
        .unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.store_write.period, 5);
        assert_eq!(plan.store_read.period, 4);
        assert_eq!(plan.torn_write.period, 3);
        assert_eq!(plan.torn_write_at, 64);
        assert_eq!(plan.slow_socket.period, 2);
        assert_eq!(plan.slow_socket_ms, 25);
        assert_eq!(plan.panic.period, 9);
        assert_eq!(plan.stall_header.period, 6);
        assert_eq!(plan.stall_header_ms, 40);
        assert_eq!(plan.stall_body.period, 7);
        assert_eq!(plan.stall_body_ms, 60);
        assert_eq!(plan.stall_read.period, 8);
        assert_eq!(plan.stall_read_ms, 100);
    }

    #[test]
    fn client_stall_sites_fire_on_their_own_schedules() {
        let plan = FaultPlan::parse("seed=2,stall_header=3@10").unwrap();
        let fired: Vec<bool> = (0..9)
            .map(|_| plan.stall_header_delay().is_some())
            .collect();
        assert_eq!(fired.iter().filter(|&&f| f).count(), 3, "{fired:?}");
        // Sites not named in the plan never fire.
        assert!(plan.stall_body_delay().is_none());
        assert!(plan.stall_read_delay().is_none());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in ["store_write_err", "nope=3", "panic=x", "torn_write=2@zz"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
        // An empty spec is a valid no-op plan.
        let plan = FaultPlan::parse("").unwrap();
        assert_eq!(plan.store_write_fault(), WriteFault::None);
        assert!(!plan.should_panic());
    }

    #[test]
    fn injection_counts_are_exact_and_seed_shifts_the_phase() {
        let plan = FaultPlan::parse("seed=1,panic=3").unwrap();
        let fired: Vec<bool> = (0..9).map(|_| plan.should_panic()).collect();
        assert_eq!(fired.iter().filter(|&&f| f).count(), 3, "{fired:?}");
        assert_eq!(plan.injected.get(), 3);

        // Same period, different seed: same count, (very likely) shifted
        // schedule.  Replays of the same seed match exactly.
        let replay = FaultPlan::parse("seed=1,panic=3").unwrap();
        let refired: Vec<bool> = (0..9).map(|_| replay.should_panic()).collect();
        assert_eq!(fired, refired, "same seed replays identically");
    }

    #[test]
    fn torn_and_failed_writes_share_the_write_site_schedule() {
        let plan = FaultPlan::parse("seed=3,store_write_err=2,torn_write=3@8").unwrap();
        let outcomes: Vec<WriteFault> = (0..12).map(|_| plan.store_write_fault()).collect();
        let torn = outcomes
            .iter()
            .filter(|f| matches!(f, WriteFault::Torn(8)))
            .count();
        let failed = outcomes.iter().filter(|&&f| f == WriteFault::Fail).count();
        assert_eq!(torn, 4, "{outcomes:?}");
        // Hard failures fire on their own site's count, minus overlaps where
        // the torn site already claimed the operation.
        assert!(failed >= 2, "{outcomes:?}");
        assert_eq!(plan.injected.get() as usize, torn + failed);
    }
}
