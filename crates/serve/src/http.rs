//! Just enough HTTP/1.1 to serve JSON over a `TcpStream` — now with
//! persistent connections and streamed responses.
//!
//! The daemon hand-rolls its transport for the same reason the workspace
//! hand-rolls its compat crates: the build environment is offline, so no
//! hyper/axum.  The subset implemented here is deliberately small and
//! deliberately defensive: header and body sizes are capped so a malicious
//! peer cannot make the server buffer unbounded bytes, and every parse
//! failure maps to a `4xx` instead of a panic.
//!
//! ## Connection lifecycle
//!
//! A connection serves **many requests per socket**, but a worker only ever
//! holds it for one request *burst*: between requests the socket parks in
//! the runtime's reactor (`crate::reactor`), and when it becomes readable a
//! pool worker parses one request with [`read_request`], writes one
//! response, serves any pipelined requests already buffered, and hands the
//! socket back to the reactor while [`Request::keep_alive`] holds.
//! `HTTP/1.1` defaults to keep-alive, `HTTP/1.0` to close; a
//! `Connection: close`/`keep-alive` header overrides either way.  Any parse
//! error closes the connection after the error response — resynchronising
//! inside a hostile byte stream is not worth the attack surface.
//!
//! Slow-client defenses live in [`ReadLimits`]: the request head must
//! *complete* within a head deadline (a slow-header drip cannot ride
//! per-read timeouts forever), each read must progress within a stall cap
//! (a mid-body stall is torn down promptly), and the whole request is
//! bounded by a total deadline.  All three map to `408`, and the server
//! layer counts them as `stall_timeouts_closed`.
//!
//! ## Responses
//!
//! Small bodies go out in one `Content-Length` write
//! ([`write_json_response`]).  Large bodies (the 100k-anchor alignment case)
//! stream through a [`ChunkedWriter`] as `Transfer-Encoding: chunked`, so
//! the response never materialises as one giant `String`; the writer
//! implements [`std::fmt::Write`], which lets the same rendering code fill
//! either a `String` or the wire.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.  Inline edge lists and attribute matrices
/// for graphs in this workspace's serving range fit comfortably; anything
/// larger should ship as a persisted artifact path instead.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Default per-read stall cap while actively reading a request; a peer that
/// stalls mid-exchange frees its worker.  (Idle time *between* requests is
/// governed by the reactor's timer wheel instead.)
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);
/// Default hard ceiling on parsing **one whole request**.  Per-read timeouts
/// alone would let a byte-trickling peer (one byte per 25 s) pin a pool
/// worker for hours and stall the shutdown join behind it; the deadline caps
/// any request's parse time — and therefore the worst-case drain — at 30 s.
const REQUEST_DEADLINE: Duration = Duration::from_secs(30);
/// Default deadline for the request *head* to arrive completely.  Tighter
/// than the whole-request deadline: heads are tiny, so a head that trickles
/// for this long is a slowloris, not a slow network.
const HEAD_DEADLINE: Duration = Duration::from_secs(10);
/// Chunked responses buffer up to this much before writing a chunk.
const CHUNK_BYTES: usize = 64 * 1024;

/// Read-progress deadlines for parsing one request — the slow-client
/// defenses.  The server layer derives these from its configured stall
/// timeout; [`Default`] gives the standalone values.
#[derive(Debug, Clone)]
pub struct ReadLimits {
    /// The whole head (request line + headers) must arrive within this.
    pub head_deadline: Duration,
    /// Every individual read must make progress within this (mid-body
    /// stall cap).
    pub stall: Duration,
    /// The whole request (head + body) must arrive within this.
    pub total: Duration,
}

impl Default for ReadLimits {
    fn default() -> Self {
        Self {
            head_deadline: HEAD_DEADLINE,
            stall: SOCKET_TIMEOUT,
            total: REQUEST_DEADLINE,
        }
    }
}

impl ReadLimits {
    /// Limits derived from one stall budget: the head must complete and any
    /// single read must progress within `stall`; the total request budget
    /// stays at the standalone default (never below the stall budget).
    pub fn with_stall(stall: Duration) -> Self {
        Self {
            head_deadline: stall,
            stall,
            total: REQUEST_DEADLINE.max(stall),
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response, per the
    /// request's HTTP version and `Connection` header.
    pub keep_alive: bool,
    /// All request headers — lower-cased names with trimmed values, in
    /// arrival order.  The server layer reads its extension headers
    /// (`X-HTC-Deadline-Ms`, `X-HTC-Client`) from here.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// The first header with this (case-insensitive) name, if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A request-level failure that should turn into an HTTP error response.
#[derive(Debug)]
pub struct HttpError {
    pub status: u16,
    pub message: String,
}

impl HttpError {
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }
}

/// Arms the socket's read timeout with whatever is shorter: the per-read
/// stall cap or the time left until the phase deadline.  A spent deadline is
/// a `408`.
fn arm_read_timeout(
    reader: &BufReader<TcpStream>,
    deadline: Instant,
    stall: Duration,
) -> Result<(), HttpError> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or_else(|| HttpError {
            status: 408,
            message: "request took too long to arrive".into(),
        })?;
    reader
        .get_ref()
        .set_read_timeout(Some(remaining.min(stall)))
        .map_err(|e| HttpError::bad_request(format!("socket: {e}")))
}

fn read_error(e: std::io::Error, what: &str) -> HttpError {
    if matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    ) {
        HttpError {
            status: 408,
            message: format!("timed out reading {what}"),
        }
    } else {
        HttpError::bad_request(format!("reading {what}: {e}"))
    }
}

/// Reads one `\n`-terminated line, never buffering more than `limit` bytes —
/// `BufRead::read_line` has no cap of its own, so a peer streaming endless
/// bytes with no newline would otherwise grow the line String unboundedly.
fn read_line_limited(
    reader: &mut BufReader<TcpStream>,
    limit: usize,
    deadline: Instant,
    stall: Duration,
    what: &str,
) -> Result<String, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        arm_read_timeout(reader, deadline, stall)?;
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) => return Err(read_error(e, what)),
        };
        if buf.is_empty() {
            return Err(HttpError::bad_request(format!(
                "connection closed mid-{what}"
            )));
        }
        let (chunk, found_newline) = match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => (&buf[..=pos], true),
            None => (buf, false),
        };
        if line.len() + chunk.len() > limit {
            return Err(HttpError {
                status: 431,
                message: "request head too large".into(),
            });
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len();
        reader.consume(consumed);
        if found_newline {
            return String::from_utf8(line)
                .map_err(|_| HttpError::bad_request(format!("{what} is not UTF-8")));
        }
    }
}

/// Reads one request from the connection's buffered reader with the default
/// [`ReadLimits`].  The caller has already established that request bytes
/// are (about to be) available — the reactor dispatched this connection as
/// readable, or a pipelined request is buffered.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, HttpError> {
    read_request_limited(reader, &ReadLimits::default())
}

/// [`read_request`] with explicit read-progress deadlines: the head must
/// complete within `limits.head_deadline`, every read must progress within
/// `limits.stall`, and the whole request must arrive within `limits.total`.
pub fn read_request_limited(
    reader: &mut BufReader<TcpStream>,
    limits: &ReadLimits,
) -> Result<Request, HttpError> {
    let start = Instant::now();
    let head_deadline = start + limits.head_deadline.min(limits.total);
    let deadline = start + limits.total;
    let stall = limits.stall;

    let request_line =
        read_line_limited(reader, MAX_HEAD_BYTES, head_deadline, stall, "request line")?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("request line has no path"))?
        .to_string();
    // HTTP/1.1 (and anything newer or unstated) defaults to keep-alive;
    // HTTP/1.0 to close.
    let http_10 = parts.next() == Some("HTTP/1.0");

    // Headers until the blank line; Content-Length and Connection matter to
    // us.  The whole head shares the MAX_HEAD_BYTES budget, checked before
    // buffering.
    let mut head_budget = MAX_HEAD_BYTES.saturating_sub(request_line.len());
    let mut content_length: usize = 0;
    let mut keep_alive = !http_10;
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line_limited(reader, head_budget, head_deadline, stall, "headers")?;
        head_budget = head_budget.saturating_sub(line.len());
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::bad_request("bad Content-Length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
            // Retained generically (bounded by the head budget above) so the
            // server layer can read its extension headers.
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError {
            status: 413,
            message: format!("request body exceeds {MAX_BODY_BYTES} bytes"),
        });
    }
    // The body is read in deadline-checked steps rather than one read_exact:
    // a peer drip-feeding a large body must exhaust the request deadline,
    // not hold the worker for content_length × per-read-timeout.
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        arm_read_timeout(reader, deadline, stall)?;
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::bad_request("connection closed mid-body")),
            Ok(n) => filled += n,
            Err(e) => return Err(read_error(e, "body")),
        }
    }
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
        headers,
    })
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

/// Whether an I/O error is a progress stall (a read/write timeout fired
/// because the peer stopped moving bytes) rather than a disconnect.  The
/// server layer counts these as `stall_timeouts_closed`.
pub fn is_stall_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn connection_header(keep_alive: bool) -> &'static str {
    if keep_alive {
        "keep-alive"
    } else {
        "close"
    }
}

/// Writes a complete `Content-Length` JSON response and flushes.
pub fn write_json_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_json_response_with(stream, status, body, keep_alive, None)
}

/// [`write_json_response`] with an optional `Retry-After` header (seconds) —
/// the backpressure responses (`429`/`503`/`504`) carry their backoff hint in
/// both the header and the structured JSON body.
pub fn write_json_response_with(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after_secs: Option<u64>,
) -> std::io::Result<()> {
    let retry_after = match retry_after_secs {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let response = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{retry_after}Connection: {}\r\n\r\n{body}",
        status_text(status),
        body.len(),
        connection_header(keep_alive),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Writes a `503 Service Unavailable` with a `Retry-After` hint — the
/// load-shedding response the acceptor sends when the worker queue is full.
/// Kept separate from [`write_json_response`] because it is the one response
/// written outside the worker pool and must carry the extra header.
pub fn write_retry_after(
    stream: &mut TcpStream,
    retry_after_secs: u32,
    body: &str,
) -> std::io::Result<()> {
    let response = format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nRetry-After: {retry_after_secs}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// A `Transfer-Encoding: chunked` response body in progress.
///
/// Text accumulates in a fixed-size buffer and leaves as a chunk whenever
/// [`CHUNK_BYTES`] fill up, so the peak memory of a response is one chunk —
/// not the whole body.  The writer implements [`std::fmt::Write`]; I/O errors
/// are latched and reported by [`finish`](Self::finish) (mid-render there is
/// nothing useful a renderer could do with them).
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
    buf: Vec<u8>,
    error: Option<std::io::Error>,
}

/// Starts a chunked JSON response: writes the head, returns the body writer.
pub fn begin_chunked_json(
    stream: &mut TcpStream,
    status: u16,
    keep_alive: bool,
) -> std::io::Result<ChunkedWriter<'_>> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        status_text(status),
        connection_header(keep_alive),
    );
    stream.write_all(head.as_bytes())?;
    Ok(ChunkedWriter {
        stream,
        buf: Vec::with_capacity(CHUNK_BYTES),
        error: None,
    })
}

impl ChunkedWriter<'_> {
    fn flush_chunk(&mut self) {
        if self.error.is_some() || self.buf.is_empty() {
            self.buf.clear();
            return;
        }
        let header = format!("{:x}\r\n", self.buf.len());
        let outcome = self
            .stream
            .write_all(header.as_bytes())
            .and_then(|()| self.stream.write_all(&self.buf))
            .and_then(|()| self.stream.write_all(b"\r\n"));
        if let Err(e) = outcome {
            self.error = Some(e);
        }
        self.buf.clear();
    }

    /// Flushes the remaining buffer, writes the terminating zero-length
    /// chunk, and surfaces any I/O error latched along the way.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.flush_chunk();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

impl std::fmt::Write for ChunkedWriter<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.buf.extend_from_slice(s.as_bytes());
        if self.buf.len() >= CHUNK_BYTES {
            self.flush_chunk();
        }
        Ok(())
    }
}

/// A minimal keep-alive HTTP/1.1 client over one socket — the counterpart
/// of this module's server half, shared by the examples, the `serve_load`
/// generator and the integration tests so the request framing (one write
/// per request, `TCP_NODELAY`, chunked-aware reads) lives in exactly one
/// place.
pub struct Client {
    /// Sole owner of the socket: reads go through the buffer, writes through
    /// [`BufReader::get_mut`].  One fd per connection, not two — at 10 000
    /// keep-alive clients the difference is half the process's fd budget.
    reader: BufReader<TcpStream>,
    /// Overall budget for reading one whole response; see
    /// [`set_response_deadline`](Self::set_response_deadline).
    response_deadline: Duration,
}

/// Default overall budget for reading one response (status line through the
/// last body byte).  Matches the old per-read socket timeout, but as a cap on
/// the *whole* response: a server trickling one byte per 59 s can no longer
/// hang a client indefinitely.
const CLIENT_RESPONSE_DEADLINE: Duration = Duration::from_secs(60);

impl Client {
    /// Connects with `TCP_NODELAY` (a second segment on a warm connection
    /// would stall ~40ms behind Nagle + delayed ACK); reads are bounded by
    /// the response deadline (default 60 s per response).
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// [`connect`](Self::connect) with a bound on the TCP handshake itself —
    /// the fleet router and the supervisor's health prober must learn "this
    /// shard is unreachable" in milliseconds, not after the kernel's minutes-
    /// long connect timeout.
    pub fn connect_timeout(
        addr: std::net::SocketAddr,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        Client::from_stream(stream)
    }

    /// Wraps an already-connected stream (e.g. one opened before the server
    /// had a free worker, to observe queueing).
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
        Ok(Client {
            reader: BufReader::new(stream),
            response_deadline: CLIENT_RESPONSE_DEADLINE,
        })
    }

    /// Caps how long [`read`](Self::read) may spend on one whole response.
    /// Every read along the way is bounded by the remaining budget, so a
    /// stalled — or byte-trickling — server fails the exchange within the
    /// deadline instead of hanging the client forever.
    pub fn set_response_deadline(&mut self, deadline: Duration) {
        self.response_deadline = deadline;
    }

    /// Writes one request (single write; keep-alive unless `close`).
    pub fn send_with(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        close: bool,
    ) -> std::io::Result<()> {
        self.send_with_headers(method, path, body, close, &[])
    }

    /// [`send_with`](Self::send_with) plus extra request headers (e.g. the
    /// `X-HTC-Deadline-Ms` budget or the `X-HTC-Client` identity).
    pub fn send_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        close: bool,
        headers: &[(&str, &str)],
    ) -> std::io::Result<()> {
        let connection = if close { "close" } else { "keep-alive" };
        let mut extra = String::new();
        for (name, value) in headers {
            extra.push_str(&format!("{name}: {value}\r\n"));
        }
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: client\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n{extra}Connection: {connection}\r\n\r\n{body}",
            body.len()
        );
        self.reader.get_mut().write_all(request.as_bytes())
    }

    /// Writes one keep-alive request.
    pub fn send(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<()> {
        self.send_with(method, path, body, false)
    }

    /// Writes one request with a raw byte body — the proxy path, where the
    /// router forwards a request body verbatim without asserting it is UTF-8.
    pub fn send_request_bytes(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        close: bool,
        headers: &[(&str, &str)],
    ) -> std::io::Result<()> {
        let connection = if close { "close" } else { "keep-alive" };
        let mut extra = String::new();
        for (name, value) in headers {
            extra.push_str(&format!("{name}: {value}\r\n"));
        }
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: client\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n{extra}Connection: {connection}\r\n\r\n",
            body.len()
        );
        let mut request = Vec::with_capacity(head.len() + body.len());
        request.extend_from_slice(head.as_bytes());
        request.extend_from_slice(body);
        self.reader.get_mut().write_all(&request)
    }

    /// The buffered read half — the fleet router relays response bytes
    /// straight off it after [`read_response_head`].
    pub fn reader_mut(&mut self) -> &mut BufReader<TcpStream> {
        &mut self.reader
    }

    /// Reads the next response off the persistent connection, bounded by the
    /// response deadline.
    pub fn read(&mut self) -> Result<ClientResponse, String> {
        read_client_response_deadline(&mut self.reader, Instant::now() + self.response_deadline)
    }

    /// One full exchange on the persistent connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<ClientResponse, String> {
        self.send(method, path, body)
            .map_err(|e| format!("send: {e}"))?;
        self.read()
    }

    /// Raw access to the socket, for tests that write hostile bytes.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        self.reader.get_mut()
    }

    /// True once the server has closed the connection — clean FIN (EOF) or
    /// RST (the server dropped the socket with unread bytes pending).
    pub fn closed(&mut self) -> bool {
        let mut byte = [0u8; 1];
        match self.reader.read(&mut byte) {
            Ok(0) => true,
            Ok(_) => false,
            Err(e) => !matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
        }
    }
}

/// A client-side response, as read by [`read_client_response`].
#[derive(Debug)]
pub struct ClientResponse {
    pub status: u16,
    /// Lower-cased header names with their trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }
}

/// Reads one HTTP response from a persistent connection: status line,
/// headers, then a `Content-Length` or `Transfer-Encoding: chunked` body.
/// Bounded by the default response deadline; see
/// [`read_client_response_deadline`] for an explicit budget.
pub fn read_client_response(reader: &mut BufReader<TcpStream>) -> Result<ClientResponse, String> {
    read_client_response_deadline(reader, Instant::now() + CLIENT_RESPONSE_DEADLINE)
}

/// Arms the socket read timeout with the time left until `deadline` (capped
/// at 1 s so each wait re-checks the budget promptly); a spent budget is the
/// deadline error.
fn arm_client_timeout(reader: &BufReader<TcpStream>, deadline: Instant) -> Result<(), String> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or("response deadline exceeded")?;
    reader
        .get_ref()
        .set_read_timeout(Some(remaining.min(Duration::from_secs(1))))
        .map_err(|e| format!("socket: {e}"))
}

fn client_read_error(e: std::io::Error, deadline: Instant) -> String {
    if matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    ) && Instant::now() >= deadline
    {
        "response deadline exceeded".into()
    } else {
        format!("reading response: {e}")
    }
}

/// Fills `buf` completely in deadline-checked steps — the client-side twin of
/// the server's drip-feed defence: a peer trickling body bytes exhausts the
/// response deadline instead of resetting a per-read timeout forever.
fn read_exact_deadline(
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<(), String> {
    let mut filled = 0;
    while filled < buf.len() {
        arm_client_timeout(reader, deadline)?;
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err("connection closed mid-response".into()),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(client_read_error(e, deadline)),
        }
    }
    Ok(())
}

/// [`read_client_response`] with an explicit overall deadline covering the
/// whole response — status line, headers and body.  This is the client half
/// of the protocol, used by the keep-alive clients in
/// `examples/serve_client.rs`, the `serve_load` generator and the
/// integration tests.
pub fn read_client_response_deadline(
    reader: &mut BufReader<TcpStream>,
    deadline: Instant,
) -> Result<ClientResponse, String> {
    let head = read_response_head(reader, deadline)?;
    let chunked = head_is_chunked(&head);
    let mut body = Vec::new();
    if chunked {
        loop {
            let size_line = read_line_deadline(reader, deadline)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| format!("bad chunk size {size_line:?}"))?;
            let mut chunk = vec![0u8; size + 2]; // chunk + trailing CRLF
            read_exact_deadline(reader, &mut chunk, deadline)?;
            if size == 0 {
                break;
            }
            chunk.truncate(size);
            body.extend_from_slice(&chunk);
        }
    } else {
        let length = head_content_length(&head)?;
        body = vec![0u8; length];
        read_exact_deadline(reader, &mut body, deadline)?;
    }
    Ok(ClientResponse {
        status: head.status,
        headers: head.headers,
        body,
    })
}

/// One `\n`-terminated line off a response stream, collected via
/// fill_buf/consume rather than `read_line`: `read_line` discards the bytes
/// it already appended when a read times out, so a line arriving in trickles
/// would silently lose its prefix between attempts.
fn read_line_deadline(
    reader: &mut BufReader<TcpStream>,
    deadline: Instant,
) -> Result<String, String> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        arm_client_timeout(reader, deadline)?;
        let buf = match reader.fill_buf() {
            Ok([]) => return Err("connection closed".into()),
            Ok(buf) => buf,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) => return Err(client_read_error(e, deadline)),
        };
        let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => (&buf[..=pos], true),
            None => (buf, false),
        };
        if line.len() + chunk.len() > MAX_HEAD_BYTES {
            return Err("response line exceeds the head budget".into());
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len();
        reader.consume(consumed);
        if done {
            return String::from_utf8(line).map_err(|_| "response is not UTF-8".into());
        }
    }
}

/// The status line and headers of one response, parsed but with the body
/// still unread on the stream.  This is the decision point for a proxy: a
/// head that arrived means the upstream is committed to answering, so the
/// caller can start relaying; a head that failed means the request can still
/// fail over to another upstream with nothing written downstream.
#[derive(Debug)]
pub struct ResponseHead {
    pub status: u16,
    /// Lower-cased names with trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
}

impl ResponseHead {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn head_is_chunked(head: &ResponseHead) -> bool {
    head.header("transfer-encoding")
        .is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
}

fn head_content_length(head: &ResponseHead) -> Result<usize, String> {
    head.header("content-length")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| "response has neither Content-Length nor chunked encoding".into())
}

/// Reads one response head (status line + headers) off the stream, leaving
/// the body unread.
pub fn read_response_head(
    reader: &mut BufReader<TcpStream>,
    deadline: Instant,
) -> Result<ResponseHead, String> {
    let status_line = read_line_deadline(reader, deadline)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    loop {
        let header = read_line_deadline(reader, deadline)?;
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok(ResponseHead { status, headers })
}

/// Why a [`relay_response`] failed — the two sides matter differently to a
/// proxy: an upstream failure mid-body leaves the downstream response torn
/// (the connection must close), while a downstream failure just means the
/// client went away.
#[derive(Debug)]
pub enum RelayError {
    Upstream(String),
    Downstream(std::io::Error),
}

impl std::fmt::Display for RelayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelayError::Upstream(e) => write!(f, "upstream: {e}"),
            RelayError::Downstream(e) => write!(f, "downstream: {e}"),
        }
    }
}

/// Relays one already-read [`ResponseHead`] plus its still-unread body from
/// `upstream` to `downstream`, preserving the body framing: a
/// `Content-Length` body is copied in bounded buffers, a chunked body is
/// re-framed chunk by chunk — a streamed upstream response stays streamed
/// through the proxy, with peak memory one copy buffer regardless of body
/// size.
///
/// Every upstream header is forwarded verbatim except `Connection`, which is
/// rewritten for the *downstream* connection's keep-alive state (the two
/// hops' lifetimes are independent), plus any `extra_headers` the proxy wants
/// to inject (e.g. `X-HTC-Shard`).
pub fn relay_response(
    upstream: &mut BufReader<TcpStream>,
    head: &ResponseHead,
    downstream: &mut TcpStream,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
    deadline: Instant,
) -> Result<(), RelayError> {
    let mut out = format!("HTTP/1.1 {} {}\r\n", head.status, status_text(head.status));
    for (name, value) in &head.headers {
        if name == "connection" {
            continue;
        }
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    for (name, value) in extra_headers {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    out.push_str(&format!(
        "Connection: {}\r\n\r\n",
        connection_header(keep_alive)
    ));
    downstream
        .write_all(out.as_bytes())
        .map_err(RelayError::Downstream)?;

    if head_is_chunked(head) {
        loop {
            let size_line = read_line_deadline(upstream, deadline).map_err(RelayError::Upstream)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| RelayError::Upstream(format!("bad chunk size {size_line:?}")))?;
            downstream
                .write_all(format!("{size:x}\r\n").as_bytes())
                .map_err(RelayError::Downstream)?;
            // The chunk and its trailing CRLF; the zero-length terminator
            // carries just the CRLF.
            copy_exact(upstream, downstream, size + 2, deadline)?;
            if size == 0 {
                break;
            }
        }
    } else {
        let length = head_content_length(head).map_err(RelayError::Upstream)?;
        copy_exact(upstream, downstream, length, deadline)?;
    }
    downstream.flush().map_err(RelayError::Downstream)
}

/// Copies exactly `count` body bytes upstream → downstream through one
/// bounded buffer, every read deadline-checked.
fn copy_exact(
    upstream: &mut BufReader<TcpStream>,
    downstream: &mut TcpStream,
    count: usize,
    deadline: Instant,
) -> Result<(), RelayError> {
    let mut remaining = count;
    let mut buf = [0u8; 16 * 1024];
    while remaining > 0 {
        arm_client_timeout(upstream, deadline).map_err(RelayError::Upstream)?;
        let want = remaining.min(buf.len());
        match upstream.read(&mut buf[..want]) {
            Ok(0) => {
                return Err(RelayError::Upstream("connection closed mid-body".into()));
            }
            Ok(n) => {
                downstream
                    .write_all(&buf[..n])
                    .map_err(RelayError::Downstream)?;
                remaining -= n;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(RelayError::Upstream(client_read_error(e, deadline))),
        }
    }
    Ok(())
}
