//! Just enough HTTP/1.1 to serve JSON over a `TcpStream`.
//!
//! The daemon hand-rolls its transport for the same reason the workspace
//! hand-rolls its compat crates: the build environment is offline, so no
//! hyper/axum.  The subset implemented here is deliberately small — request
//! line, headers, `Content-Length` bodies, `Connection: close` responses —
//! and deliberately defensive: header and body sizes are capped so a
//! malicious peer cannot make the server buffer unbounded bytes, and every
//! parse failure maps to a `400` instead of a panic.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.  Inline edge lists and attribute matrices
/// for graphs in this workspace's serving range fit comfortably; anything
/// larger should ship as a persisted artifact path instead.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Per-connection socket timeout; a stalled peer frees its thread.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// A request-level failure that should turn into an HTTP error response.
#[derive(Debug)]
pub struct HttpError {
    pub status: u16,
    pub message: String,
}

impl HttpError {
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }
}

/// Reads one `\n`-terminated line, never buffering more than `limit` bytes —
/// `BufRead::read_line` has no cap of its own, so a peer streaming endless
/// bytes with no newline would otherwise grow the line String unboundedly.
fn read_line_limited<R: BufRead>(
    reader: &mut R,
    limit: usize,
    what: &str,
) -> Result<String, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader
            .fill_buf()
            .map_err(|e| HttpError::bad_request(format!("reading {what}: {e}")))?;
        if buf.is_empty() {
            return Err(HttpError::bad_request(format!(
                "connection closed mid-{what}"
            )));
        }
        let (chunk, found_newline) = match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => (&buf[..=pos], true),
            None => (buf, false),
        };
        if line.len() + chunk.len() > limit {
            return Err(HttpError {
                status: 431,
                message: "request head too large".into(),
            });
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len();
        reader.consume(consumed);
        if found_newline {
            return String::from_utf8(line)
                .map_err(|_| HttpError::bad_request(format!("{what} is not UTF-8")));
        }
    }
}

/// Reads one request from `stream` (which is also configured with the
/// connection timeout here).
pub fn read_request(stream: &TcpStream) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT)).ok();
    stream.set_write_timeout(Some(SOCKET_TIMEOUT)).ok();
    let mut reader = BufReader::new(stream);

    let request_line = read_line_limited(&mut reader, MAX_HEAD_BYTES, "request line")?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("request line has no path"))?
        .to_string();

    // Headers until the blank line; only Content-Length matters to us.  The
    // whole head shares the MAX_HEAD_BYTES budget, checked before buffering.
    let mut head_budget = MAX_HEAD_BYTES.saturating_sub(request_line.len());
    let mut content_length: usize = 0;
    loop {
        let line = read_line_limited(&mut reader, head_budget, "headers")?;
        head_budget = head_budget.saturating_sub(line.len());
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::bad_request("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError {
            status: 413,
            message: format!("request body exceeds {MAX_BODY_BYTES} bytes"),
        });
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::bad_request(format!("reading body: {e}")))?;
    Ok(Request { method, path, body })
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes a JSON response and flushes; the server closes each connection
/// after one exchange (`Connection: close`), which keeps the threading model
/// trivially correct.
pub fn write_json_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let response = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        status_text(status),
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}
