//! Unix signal → clean drain, without a signal-handling dependency.
//!
//! A fleet supervisor stops its shards with `SIGTERM`; an operator stops a
//! standalone daemon with Ctrl-C (`SIGINT`).  Both must take the *same*
//! deterministic drain path as `POST /shutdown`: stop accepting, serve
//! whatever is queued, join every worker.  Killing the process mid-response
//! would tear connections and race the durable-cache spill writes.
//!
//! The handler itself does the only thing that is async-signal-safe: store
//! one atomic flag.  A watcher thread polls the flag and forwards it to the
//! server's [`ShutdownSignal`] — `trigger` takes locks and opens a wake-up
//! connection, neither of which may run inside a signal handler.

use crate::runtime::ShutdownSignal;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set by the signal handler; drained by the watcher thread.
static SIGNAL_PENDING: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use super::SIGNAL_PENDING;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`.  Declared with a typed handler (not `usize`)
        /// because this module only ever installs a real function — never
        /// `SIG_IGN`/`SIG_DFL`.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a lock-free store and nothing else.
        SIGNAL_PENDING.store(true, Ordering::SeqCst);
    }

    pub fn install_handlers() {
        // SAFETY: `signal` is the POSIX libc symbol (linked via std's libc
        // dependency); `on_signal` is a valid `extern "C" fn(i32)` for the
        // whole program lifetime and only performs an atomic store.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install_handlers() {}
}

/// Installs `SIGINT`/`SIGTERM` handlers and spawns a watcher thread that
/// converts the first received signal into `shutdown.trigger()` — the exact
/// shutdown path `POST /shutdown` takes.  On non-Unix targets only the
/// (never-set) watcher is spawned.
///
/// Call once from the binary's `main`, after the server has started.  The
/// watcher is a daemon thread: it exits with the process and is deliberately
/// not joined.
pub fn install_shutdown_handler(shutdown: Arc<ShutdownSignal>) {
    sys::install_handlers();
    std::thread::Builder::new()
        .name("htc-serve-signals".into())
        .spawn(move || loop {
            if SIGNAL_PENDING.load(Ordering::SeqCst) {
                shutdown.trigger();
                return;
            }
            if shutdown.is_triggered() {
                // The server is already draining via another path; the
                // watcher has nothing left to forward.
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        })
        .expect("spawning the signal watcher thread");
}
