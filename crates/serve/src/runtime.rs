//! The connection runtime: acceptor + reactor + bounded worker pool.
//!
//! The first `htc-serve` iteration spawned one OS thread per connection and
//! spoke one-shot HTTP.  PR 4 replaced that with a bounded worker pool — but
//! one worker still owned one connection for its whole keep-alive lifetime,
//! so a few thousand idle persistent clients exhausted the pool.  This
//! revision makes worker occupancy **per in-flight request**:
//!
//! * the acceptor registers every new connection with the event-driven
//!   [`reactor`](crate::reactor) instead of handing it a worker.  Sockets
//!   between requests park there, watched by epoll/kqueue, costing no
//!   threads;
//! * only when a parked socket becomes **readable** does the reactor push it
//!   onto the bounded hand-off queue.  When the queue is full the connection
//!   is **shed** with `503 Retry-After`, so overload degrades into fast,
//!   explicit retries instead of unbounded memory growth;
//! * a worker serves one request *burst* — the readable request plus any
//!   pipelined requests already buffered — then returns a [`Disposition`]:
//!   `KeepAlive` re-parks the socket in the reactor, `Close` drops it;
//! * idle keep-alive timeouts are enforced by the reactor's timer wheel (no
//!   per-connection poll slices), and per-peer connection caps are enforced
//!   at accept ([`RuntimeConfig::peer_max_conns`]) so one host cannot
//!   monopolise the parked population;
//! * live occupancy metrics ([`RuntimeMetrics`], now including the parked
//!   gauge and reactor counters) are surfaced through `/stats`;
//! * deterministic shutdown: [`ShutdownSignal::trigger`] stops the acceptor,
//!   the reactor reaps every parked socket, the queue drains (dispatched
//!   connections are still served), and every worker **and** the reactor are
//!   joined before [`ConnectionRuntime::join`] returns.
//!
//! The runtime stays protocol-agnostic: the handler closure owns the burst
//! loop over a [`Conn`] (see `server::handle_connection`) and reports how
//! the connection should continue via its [`Disposition`].

use crate::http::write_retry_after;
use crate::reactor::Reactor;
use htc_metrics::{Counter, Gauge};
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Read};
use std::net::{IpAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hard ceiling on the worker pool, mirroring the compute pool's cap.
pub const MAX_WORKERS: usize = 256;

/// Read-buffer size for each connection.  Small on purpose: with ten
/// thousand parked connections the buffers dominate per-connection memory,
/// and request heads fit comfortably while bodies bypass the buffer.
const CONN_BUF_BYTES: usize = 4 * 1024;

/// The default worker count: `min(2 × available cores, 64)`.  Workers block
/// on socket I/O only while a request is in flight (idle connections park in
/// the reactor), so this now bounds *concurrent requests*, not connections.
pub fn default_workers() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (2 * cores).clamp(1, 64)
}

/// Configuration of a [`ConnectionRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker-pool size; clamped to `1..=MAX_WORKERS`.
    pub workers: usize,
    /// Readable connections waiting for a worker beyond this count are shed
    /// with `503 Retry-After`.
    pub queue_capacity: usize,
    /// `Retry-After` hint (seconds) sent with shed connections.
    pub retry_after_secs: u32,
    /// How long a parked connection may sit idle between requests before the
    /// reactor closes it (the HTTP keep-alive timeout).
    pub idle_timeout: Duration,
    /// Write-progress deadline applied to every connection: a peer that
    /// accepts no response bytes for this long (stalled reader) fails the
    /// write and is torn down instead of pinning a worker behind a dead
    /// socket.  The kernel send buffer is the bounded staging area.
    pub stall_timeout: Duration,
    /// Maximum simultaneous connections per peer IP; `0` disables the cap.
    /// Enforced at accept with a `429` teardown, counted in
    /// [`RuntimeMetrics::peer_cap_rejections`].
    pub peer_max_conns: usize,
    /// Cap (bytes) on each accepted connection's kernel send buffer; `0`
    /// keeps the kernel default with autotuning.  Autotuned send buffers
    /// grow to megabytes, so a stalled reader can absorb that much response
    /// before the write-progress deadline ever engages — capping the buffer
    /// bounds per-connection kernel memory and makes the stall teardown
    /// deterministic.
    pub sndbuf: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: default_workers(),
            queue_capacity: 128,
            retry_after_secs: 1,
            idle_timeout: Duration::from_secs(15),
            stall_timeout: Duration::from_secs(5),
            peer_max_conns: 0,
            sndbuf: 0,
        }
    }
}

/// Best-effort `SO_SNDBUF` cap on an accepted socket.  Setting the option
/// also locks it (`SOCK_SNDBUF_LOCK`), which is the point: it disables send
/// autotuning so the buffer cannot quietly grow back to megabytes under a
/// stalled reader.  Raw syscall — same no-libc discipline as the reactor.
#[cfg(unix)]
fn set_sndbuf(stream: &TcpStream, bytes: usize) {
    use std::os::unix::io::AsRawFd;
    extern "C" {
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
    }
    #[cfg(target_os = "linux")]
    const SOL_SOCKET: i32 = 1;
    #[cfg(target_os = "linux")]
    const SO_SNDBUF: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const SOL_SOCKET: i32 = 0xffff;
    #[cfg(not(target_os = "linux"))]
    const SO_SNDBUF: i32 = 0x1001;
    let value = i32::try_from(bytes).unwrap_or(i32::MAX);
    unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_SNDBUF,
            &value,
            std::mem::size_of::<i32>() as u32,
        );
    }
}

#[cfg(not(unix))]
fn set_sndbuf(_stream: &TcpStream, _bytes: usize) {}

/// Live occupancy counters, updated lock-free by the acceptor, the reactor
/// and the workers.
///
/// `total_requests / total_connections` is the keep-alive reuse ratio: 1.0
/// means every connection carried exactly one request (no reuse); a serving
/// workload with persistent clients should sit well above it.
#[derive(Debug, Default)]
pub struct RuntimeMetrics {
    /// Connections currently owned by workers (in-flight request bursts).
    pub active_connections: Gauge,
    /// Readable connections waiting for a worker.
    pub queue_depth: Gauge,
    /// Connections currently parked in the reactor between requests.
    pub parked: Gauge,
    /// Times the reactor loop woke (events, parks, or timer ticks).  An idle
    /// parked population holds this flat — the busy-poll regression guard.
    pub reactor_wakeups: Counter,
    /// Connections torn down because a read or write stopped progressing
    /// within the stall deadline (slow-header, mid-body, stalled-reader).
    pub stall_timeouts_closed: Counter,
    /// Connections refused at accept by the per-peer connection cap.
    pub peer_cap_rejections: Counter,
    /// Connections ever accepted (including shed and refused ones).
    pub total_connections: Counter,
    /// HTTP requests served across all connections (incremented by the
    /// protocol handler, one per parsed request).
    pub total_requests: Counter,
    /// Connections answered `503` because the queue was full.
    pub shed_connections: Counter,
    /// Request handlers that panicked (caught at the burst boundary).
    pub worker_panics: Counter,
    /// Requests answered `504` because their deadline (which covers queue
    /// wait, not just compute) expired.
    pub deadline_expired: Counter,
    /// Requests answered `429` by the per-peer token bucket or the per-source
    /// fair-share gate.
    pub rate_limited: Counter,
    /// Requests answered degraded (`503`) by the pressure ladder instead of
    /// paying a cold start.
    pub degraded_responses: Counter,
}

impl RuntimeMetrics {
    /// Requests per connection (0 when nothing connected yet).
    pub fn reuse_ratio(&self) -> f64 {
        let connections = self.total_connections.get();
        if connections == 0 {
            0.0
        } else {
            self.total_requests.get() as f64 / connections as f64
        }
    }
}

/// A shutdown flag shared between the runtime, its workers and the protocol
/// handler.  [`trigger`](Self::trigger) is idempotent and safe to call from
/// a worker thread (the `/shutdown` route) or from outside.
#[derive(Debug, Default)]
pub struct ShutdownSignal {
    flag: AtomicBool,
    /// The listener's bound address; set by the runtime so `trigger` can
    /// wake the blocking accept with a throwaway connection.
    addr: Mutex<Option<std::net::SocketAddr>>,
}

impl ShutdownSignal {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes the acceptor.  Returns immediately; use
    /// [`ConnectionRuntime::join`] to wait for the drain.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let addr = *self.addr.lock().unwrap();
        if let Some(addr) = addr {
            // Wake the blocking accept; the acceptor re-checks the flag
            // before registering any connection, then drains the reactor.
            let _ = TcpStream::connect(addr);
        }
    }

    fn bind(&self, addr: std::net::SocketAddr) {
        *self.addr.lock().unwrap() = Some(addr);
    }
}

/// Per-peer simultaneous-connection accounting behind
/// [`RuntimeConfig::peer_max_conns`].
#[derive(Default)]
struct PeerTable {
    counts: Mutex<HashMap<IpAddr, usize>>,
}

impl PeerTable {
    /// Claims a slot for `ip`, or `None` when the peer is at its cap.
    fn try_acquire(self: &Arc<Self>, ip: IpAddr, cap: usize) -> Option<PeerSlot> {
        let mut counts = self.counts.lock().unwrap();
        let count = counts.entry(ip).or_insert(0);
        if *count >= cap {
            return None;
        }
        *count += 1;
        Some(PeerSlot {
            table: Arc::clone(self),
            ip,
        })
    }
}

/// RAII release of one peer-cap slot: lives inside the [`Conn`], so however
/// a connection ends — served, shed, idle-reaped, drain sweep — the peer's
/// count comes back down.
struct PeerSlot {
    table: Arc<PeerTable>,
    ip: IpAddr,
}

impl Drop for PeerSlot {
    fn drop(&mut self) {
        let mut counts = self.table.counts.lock().unwrap();
        if let Some(count) = counts.get_mut(&self.ip) {
            *count -= 1;
            if *count == 0 {
                counts.remove(&self.ip);
            }
        }
    }
}

/// One live connection, owned alternately by a worker (request burst in
/// flight) and the reactor (parked between requests).  The buffered reader
/// is created once at accept and travels with the socket, so bytes that
/// arrive between "burst finished" and "reactor registered" are never lost:
/// the burst loop serves everything buffered before returning `KeepAlive`,
/// and level-triggered readiness re-reports anything that raced in after.
pub struct Conn {
    /// Sole owner of the socket fd.  Reads go through the buffer; writes go
    /// through [`BufReader::get_mut`] (writing does not disturb the read
    /// buffer).  One fd per parked connection instead of the two a
    /// `try_clone` split would cost — at 10 000 idle clients that halves the
    /// server's fd footprint.
    reader: BufReader<TcpStream>,
    accepted_at: Instant,
    dispatched_at: Instant,
    requests_served: u64,
    /// Held for the connection's lifetime; dropping it releases the peer's
    /// connection-cap slot.
    _peer_slot: Option<PeerSlot>,
}

impl Conn {
    fn new(stream: TcpStream, peer_slot: Option<PeerSlot>) -> Conn {
        let accepted_at = Instant::now();
        Conn {
            reader: BufReader::with_capacity(CONN_BUF_BYTES, stream),
            accepted_at,
            dispatched_at: accepted_at,
            requests_served: 0,
            _peer_slot: peer_slot,
        }
    }

    pub fn reader_mut(&mut self) -> &mut BufReader<TcpStream> {
        &mut self.reader
    }

    pub fn stream(&self) -> &TcpStream {
        self.reader.get_ref()
    }

    /// The write half.  Writing through the buffered reader's inner stream is
    /// safe — only reads through the buffer itself would desynchronise it.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        self.reader.get_mut()
    }

    /// When the acceptor took this connection.
    pub fn accepted_at(&self) -> Instant {
        self.accepted_at
    }

    /// When the reactor last handed this connection to the worker pool — the
    /// deadline anchor for the burst's first request.  Queue wait counts
    /// against the request budget; parked idle time (the client's own) does
    /// not, so a connection that idled longer than the request deadline is
    /// not condemned the moment it finally speaks.
    pub fn dispatched_at(&self) -> Instant {
        self.dispatched_at
    }

    /// Stamped by the reactor as it hands the connection to the pool.
    pub(crate) fn note_dispatched(&mut self) {
        self.dispatched_at = Instant::now();
    }

    /// Requests completed on this connection so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Records one completed request (drives the first-request deadline
    /// anchor and the reuse accounting).
    pub fn note_request(&mut self) {
        self.requests_served += 1;
    }

    /// Whether a pipelined request is already buffered — if so the burst
    /// loop must keep serving instead of parking (the reactor would never
    /// see buffered bytes, only socket readiness).
    pub fn has_buffered(&self) -> bool {
        !self.reader.buffer().is_empty()
    }

    pub(crate) fn raw_fd(&self) -> RawFd {
        self.reader.get_ref().as_raw_fd()
    }

    /// Surrenders the socket, discarding any buffered-but-unparsed request
    /// bytes — only used on the shed path, where the connection is about to
    /// be closed with an error response anyway.
    pub(crate) fn into_stream(self) -> TcpStream {
        self.reader.into_inner()
    }
}

/// What a handler decided about the connection after one request burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Park in the reactor and wait for the next request.
    KeepAlive,
    /// Close the connection now.
    Close,
}

/// The protocol handler: serves one request burst on a dispatched
/// connection and reports how the connection should continue.
pub type ConnHandler = Arc<dyn Fn(&mut Conn) -> Disposition + Send + Sync>;

pub(crate) struct Queue {
    state: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    connections: VecDeque<Conn>,
    closed: bool,
}

impl Queue {
    fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                connections: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues if below `capacity`; the rejected connection comes back for
    /// shedding.  The depth gauge is incremented under the queue lock so it
    /// never counts rejected connections and a worker's decrement (which can
    /// only follow a successful pop, hence this lock) is always ordered
    /// after it.
    pub(crate) fn push(&self, conn: Conn, capacity: usize, depth: &Gauge) -> Result<(), Conn> {
        let mut state = self.state.lock().unwrap();
        if state.closed || state.connections.len() >= capacity {
            return Err(conn);
        }
        state.connections.push_back(conn);
        depth.inc();
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next readable connection; `None` once the queue is
    /// closed **and** drained — the worker's signal to exit.
    fn pop(&self) -> Option<Conn> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(conn) = state.connections.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }
}

/// A running acceptor + reactor + worker pool bound to one listener.
pub struct ConnectionRuntime {
    accept_thread: Option<std::thread::JoinHandle<()>>,
    metrics: Arc<RuntimeMetrics>,
    shutdown: Arc<ShutdownSignal>,
    workers: usize,
}

impl ConnectionRuntime {
    /// Starts the reactor, the pool and the accept loop.  `handler` serves
    /// one request burst per dispatch and runs on a pool worker under a
    /// panic guard: a panic that unwinds out of it drops the connection,
    /// increments `worker_panics`, and the worker lives on — the pool never
    /// shrinks.
    ///
    /// `metrics` is caller-supplied so the protocol layer can hold the same
    /// handle (it increments `total_requests` and the stall counters) and
    /// report everything through one `/stats` snapshot.
    pub fn start(
        listener: TcpListener,
        config: RuntimeConfig,
        shutdown: Arc<ShutdownSignal>,
        metrics: Arc<RuntimeMetrics>,
        handler: ConnHandler,
    ) -> std::io::Result<ConnectionRuntime> {
        let addr = listener.local_addr()?;
        shutdown.bind(addr);
        let workers = config.workers.clamp(1, MAX_WORKERS);
        let queue = Arc::new(Queue::new());
        let mut reactor = Reactor::start(
            config.idle_timeout,
            Arc::clone(&queue),
            Arc::clone(&metrics),
            config.queue_capacity.max(1),
            config.retry_after_secs,
        )?;
        let reactor_handle = reactor.handle();

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            let handler = Arc::clone(&handler);
            let reactor_handle = reactor_handle.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("htc-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(mut conn) = queue.pop() {
                            metrics.queue_depth.dec();
                            metrics.active_connections.inc();
                            // The protocol handler catches panics per
                            // request; this guard is the backstop for
                            // anything that escapes it (e.g. a response
                            // *writer* panic), so a bug costs one connection
                            // — never a worker, and never a drifting gauge.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handler(&mut conn)
                                }));
                            metrics.active_connections.dec();
                            match outcome {
                                Ok(Disposition::KeepAlive) => reactor_handle.park(conn),
                                Ok(Disposition::Close) => drop(conn),
                                Err(_) => {
                                    metrics.worker_panics.inc();
                                    drop(conn);
                                }
                            }
                        }
                    })?,
            );
        }

        let accept_metrics = Arc::clone(&metrics);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("htc-serve-accept".into())
            .spawn(move || {
                accept_loop(
                    listener,
                    &config,
                    &reactor_handle,
                    &accept_metrics,
                    &accept_shutdown,
                );
                // Deterministic drain, in dependency order: no new
                // connections; the reactor reaps every parked socket and is
                // joined; the queue closes so workers finish what was
                // already dispatched; every worker is joined.  Bursts that
                // finish mid-drain and try to re-park find the reactor
                // draining and close instead.
                reactor.drain_and_join();
                queue.close();
                for handle in worker_handles {
                    let _ = handle.join();
                }
            })?;

        Ok(ConnectionRuntime {
            accept_thread: Some(accept_thread),
            metrics,
            shutdown,
            workers,
        })
    }

    pub fn metrics(&self) -> Arc<RuntimeMetrics> {
        Arc::clone(&self.metrics)
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Waits until the accept loop has exited, the reactor has reaped every
    /// parked connection, and every worker is joined.  Call
    /// [`ShutdownSignal::trigger`] (or POST `/shutdown`) to initiate.
    pub fn join(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ConnectionRuntime {
    fn drop(&mut self) {
        // RAII backstop: a runtime dropped without an explicit shutdown still
        // stops accepting, reaps the parked population and joins every worker
        // instead of hanging or leaking detached threads.
        self.shutdown.trigger();
        self.join();
    }
}

fn accept_loop(
    listener: TcpListener,
    config: &RuntimeConfig,
    reactor: &crate::reactor::ReactorHandle,
    metrics: &RuntimeMetrics,
    shutdown: &ShutdownSignal,
) {
    let peers = Arc::new(PeerTable::default());
    for stream in listener.incoming() {
        if shutdown.is_triggered() {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        // Keep-alive exchanges are small request/response turns; Nagle's
        // algorithm pairing with delayed ACKs would add ~40ms to every turn
        // on a warm connection.
        let _ = stream.set_nodelay(true);
        metrics.total_connections.inc();
        let peer_slot = if config.peer_max_conns > 0 {
            let ip = stream.peer_addr().map(|a| a.ip());
            match ip {
                Ok(ip) => match peers.try_acquire(ip, config.peer_max_conns) {
                    Some(slot) => Some(slot),
                    None => {
                        metrics.peer_cap_rejections.inc();
                        reject_peer_cap(stream, config.retry_after_secs);
                        continue;
                    }
                },
                Err(_) => None,
            }
        } else {
            None
        };
        // The write-progress deadline: a stalled reader fails the in-flight
        // write once the kernel send buffer has absorbed what it can.
        if !config.stall_timeout.is_zero() {
            let _ = stream.set_write_timeout(Some(config.stall_timeout));
        }
        if config.sndbuf > 0 {
            set_sndbuf(&stream, config.sndbuf);
        }
        // Every connection starts parked: the reactor dispatches it to the
        // pool the moment the first request bytes arrive, so a client that
        // connects and stalls costs no worker at all.
        reactor.park(Conn::new(stream, peer_slot));
    }
}

/// Refuses one over-cap connection from a greedy peer: a bounded-write `429`
/// with a backoff hint, then close.  Runs on the acceptor thread, so every
/// wait is tightly bounded.
fn reject_peer_cap(mut stream: TcpStream, retry_after_secs: u32) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let body = format!(
        "{{\"error\":\"too many connections from this peer\",\
         \"kind\":\"peer_connection_cap\",\"retry_after_ms\":{}}}",
        u64::from(retry_after_secs) * 1000,
    );
    let response = format!(
        "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nRetry-After: {retry_after_secs}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    use std::io::Write;
    let _ = stream.write_all(response.as_bytes());
}

/// Sheds one over-capacity connection: writes the `503 Retry-After`, sends
/// FIN, then briefly drains whatever request bytes the peer already sent.
/// Dropping the socket with unread bytes pending would RST and frequently
/// destroy the in-flight 503 — the client would see "connection reset"
/// instead of the explicit backoff hint.  All waits are tightly bounded
/// because this runs on the reactor thread: a well-behaved peer drains in
/// one non-blocking read; a hostile one costs at most ~160 ms.
pub(crate) fn shed_conn(conn: Conn, retry_after_secs: u32, queue_depth: u64) {
    let mut rejected = conn.into_stream();
    rejected
        .set_write_timeout(Some(Duration::from_secs(1)))
        .ok();
    let body = format!(
        "{{\"error\":\"server is at capacity\",\"kind\":\"overloaded\",\
         \"retry_after_ms\":{},\"queue_depth\":{queue_depth}}}",
        u64::from(retry_after_secs) * 1000,
    );
    let written = write_retry_after(&mut rejected, retry_after_secs, &body);
    if written.is_err() {
        return;
    }
    let _ = rejected.shutdown(std::net::Shutdown::Write);
    rejected
        .set_read_timeout(Some(Duration::from_millis(20)))
        .ok();
    let mut sink = [0u8; 4096];
    for _ in 0..8 {
        match rejected.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn test_config(workers: usize, queue_capacity: usize, retry_after_secs: u32) -> RuntimeConfig {
        RuntimeConfig {
            workers,
            queue_capacity,
            retry_after_secs,
            idle_timeout: Duration::from_secs(10),
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn default_workers_is_bounded() {
        let n = default_workers();
        assert!((1..=64).contains(&n));
    }

    #[test]
    fn reuse_ratio_divides_requests_by_connections() {
        let m = RuntimeMetrics::default();
        assert_eq!(m.reuse_ratio(), 0.0);
        m.total_connections.inc();
        m.total_connections.inc();
        m.total_requests.add(6);
        assert!((m.reuse_ratio() - 3.0).abs() < 1e-12);
    }

    /// Pool mechanics without HTTP: readable connections are dispatched to
    /// exactly `workers` threads, excess queues, and shutdown drains
    /// deterministically.
    #[test]
    fn pool_serves_queues_and_drains() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(ShutdownSignal::new());
        let handler: ConnHandler = Arc::new(|conn: &mut Conn| {
            let mut byte = [0u8; 1];
            // Echo one byte, then close: the "request" is the byte itself.
            let got = conn.reader_mut().read(&mut byte).map(|n| n == 1);
            if got.unwrap_or(false) {
                let _ = conn.stream_mut().write_all(&byte);
            }
            Disposition::Close
        });
        let mut runtime = ConnectionRuntime::start(
            listener,
            test_config(2, 16, 1),
            Arc::clone(&shutdown),
            Arc::new(RuntimeMetrics::default()),
            handler,
        )
        .unwrap();
        let metrics = runtime.metrics();

        // 6 concurrent connections through 2 workers: all complete.
        let clients: Vec<_> = (0..6u8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(10)))
                        .unwrap();
                    stream.write_all(&[i]).unwrap();
                    let mut echoed = [0u8; 1];
                    stream.read_exact(&mut echoed).unwrap();
                    echoed[0]
                })
            })
            .collect();
        let mut echoes: Vec<u8> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        echoes.sort_unstable();
        assert_eq!(echoes, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(metrics.total_connections.get(), 6);

        shutdown.trigger();
        runtime.join();
        // After join, the gauges are settled: nothing active, queued or
        // parked.
        assert_eq!(metrics.active_connections.get(), 0);
        assert_eq!(metrics.queue_depth.get(), 0);
        assert_eq!(metrics.parked.get(), 0);
        assert!(metrics.active_connections.high_water() <= 2);
    }

    /// A handler panic costs one connection, never a worker: the pool keeps
    /// serving, the gauges settle, and the panic is counted.
    #[test]
    fn handler_panic_does_not_kill_the_worker() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(ShutdownSignal::new());
        let handler: ConnHandler = Arc::new(|conn: &mut Conn| {
            let mut byte = [0u8; 1];
            conn.reader_mut().read_exact(&mut byte).unwrap();
            if byte[0] == b'!' {
                panic!("injected handler failure");
            }
            conn.stream_mut().write_all(&byte).unwrap();
            Disposition::Close
        });
        let mut runtime = ConnectionRuntime::start(
            listener,
            test_config(1, 4, 1),
            Arc::clone(&shutdown),
            Arc::new(RuntimeMetrics::default()),
            handler,
        )
        .unwrap();
        let metrics = runtime.metrics();

        // First connection makes the (single) worker panic...
        let mut poison = TcpStream::connect(addr).unwrap();
        poison.write_all(b"!").unwrap();
        let mut end = Vec::new();
        let _ = poison.read_to_end(&mut end); // connection dropped by the guard

        // ...and the same worker still serves the next connection.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(b"a").unwrap();
        let mut echoed = [0u8; 1];
        stream.read_exact(&mut echoed).unwrap();
        assert_eq!(&echoed, b"a");
        assert_eq!(metrics.worker_panics.get(), 1);

        shutdown.trigger();
        runtime.join();
        assert_eq!(metrics.active_connections.get(), 0);
    }

    /// A full queue sheds with 503 + Retry-After, written by the reactor on
    /// dispatch.  Saturation now requires *in-flight requests* (idle
    /// connections park for free), so every client sends a byte: the first
    /// pins the only worker, the second fills the queue, the third is shed.
    #[test]
    fn full_queue_sheds_with_retry_after() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(ShutdownSignal::new());
        // The handler announces itself, then parks until released — which
        // lets the test sequence "worker busy" and "queue full"
        // deterministically instead of racing the dispatch loop.
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        let handler: ConnHandler = Arc::new(move |_conn: &mut Conn| {
            let _ = started_tx.send(());
            let _ = release_rx.lock().unwrap().recv();
            Disposition::Close
        });
        let mut runtime = ConnectionRuntime::start(
            listener,
            test_config(1, 1, 7),
            Arc::clone(&shutdown),
            Arc::new(RuntimeMetrics::default()),
            handler,
        )
        .unwrap();
        // Rebind after the runtime so an assert failure unwinds in the right
        // order: the sender drops first, releasing any parked handler, and
        // only then does the runtime's Drop join its workers.
        let release_tx = release_tx;
        let metrics = runtime.metrics();

        // First connection sends a byte and occupies the worker...
        let mut held_a = TcpStream::connect(addr).unwrap();
        held_a.write_all(b"a").unwrap();
        started_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("worker picked up the first connection");
        // ...second sends a byte and fills the queue (the worker is parked,
        // so its dispatch stays queued).
        let mut held_b = TcpStream::connect(addr).unwrap();
        held_b.write_all(b"b").unwrap();
        for _ in 0..200 {
            if metrics.queue_depth.get() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(metrics.active_connections.get(), 1);
        assert_eq!(metrics.queue_depth.get(), 1);

        // Third connection sends a byte: its dispatch finds the queue full
        // and the reactor sheds it.
        let mut shed = TcpStream::connect(addr).unwrap();
        shed.write_all(b"c").unwrap();
        shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut response = String::new();
        shed.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 503"), "{response}");
        assert!(response.contains("Retry-After: 7"), "{response}");
        assert!(response.contains("overloaded"), "{response}");
        assert_eq!(metrics.shed_connections.get(), 1);

        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        shutdown.trigger();
        runtime.join();
        drop(held_a);
        drop(held_b);
        assert_eq!(metrics.queue_depth.get(), 0);
    }

    /// The per-peer connection cap refuses the over-cap connect with a 429
    /// and releases the slot when an earlier connection closes.
    #[test]
    fn peer_cap_rejects_and_releases() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(ShutdownSignal::new());
        let handler: ConnHandler = Arc::new(|_conn: &mut Conn| Disposition::Close);
        let config = RuntimeConfig {
            workers: 1,
            peer_max_conns: 2,
            ..RuntimeConfig::default()
        };
        let runtime = ConnectionRuntime::start(
            listener,
            config,
            Arc::clone(&shutdown),
            Arc::new(RuntimeMetrics::default()),
            handler,
        )
        .unwrap();
        let metrics = runtime.metrics();

        let a = TcpStream::connect(addr).unwrap();
        let b = TcpStream::connect(addr).unwrap();
        // Both idle connections must be parked (at the cap) before the third
        // connect, or the refusal would race the accepts.
        for _ in 0..200 {
            if metrics.parked.get() == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(metrics.parked.get(), 2);

        let mut over = TcpStream::connect(addr).unwrap();
        over.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut response = String::new();
        over.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 429"), "{response}");
        assert!(response.contains("peer_connection_cap"), "{response}");
        assert_eq!(metrics.peer_cap_rejections.get(), 1);

        // Closing one in-cap connection frees a slot for a fresh connect.
        drop(a);
        let mut slot_freed = false;
        for _ in 0..200 {
            let c = TcpStream::connect(addr).unwrap();
            c.set_read_timeout(Some(Duration::from_millis(100))).ok();
            let mut probe = c;
            let mut buf = [0u8; 1];
            match probe.read(&mut buf) {
                // Parked and idle: no response bytes, read times out.
                Err(ref e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    slot_freed = true;
                    break;
                }
                // A 429 means the old slot has not drained yet; retry.
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        assert!(slot_freed, "peer slot was not released");
        drop(b);
    }
}
