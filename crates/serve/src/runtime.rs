//! The connection runtime: a bounded acceptor + worker-pool executor.
//!
//! The first `htc-serve` iteration spawned one OS thread per connection and
//! spoke one-shot HTTP.  Under heavy traffic that model has two failure
//! modes: unbounded thread creation (every accepted socket is a new stack)
//! and zero backpressure (the kernel accept queue is the only limit, and a
//! client never learns the server is saturated).  This module replaces it
//! with:
//!
//! * a fixed pool of `workers` threads (default [`default_workers`]:
//!   `min(2 × cores, 64)`) that each own one connection at a time for its
//!   whole keep-alive lifetime;
//! * a bounded hand-off queue between the acceptor and the pool.  When the
//!   queue is full the acceptor **sheds load**: it answers the new
//!   connection `503 Service Unavailable` with a `Retry-After` hint and
//!   closes it, so overload degrades into fast, explicit retries instead of
//!   unbounded memory growth;
//! * live occupancy metrics ([`RuntimeMetrics`]) surfaced through `/stats`;
//! * deterministic shutdown: [`ShutdownSignal::trigger`] stops the acceptor,
//!   the queue drains (already-accepted connections are still served), and
//!   every worker is **joined** before [`ConnectionRuntime::join`] returns —
//!   no fire-and-forget helper threads, no process exit racing a response
//!   flush.
//!
//! The runtime is protocol-agnostic: it hands raw [`TcpStream`]s to the
//! handler closure, which owns the keep-alive request loop (see
//! `server::handle_connection`).

use crate::http::write_retry_after;
use htc_metrics::{Counter, Gauge};
use std::collections::VecDeque;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hard ceiling on the worker pool, mirroring the compute pool's cap.
pub const MAX_WORKERS: usize = 256;

/// The default worker count: `min(2 × available cores, 64)`.  Workers block
/// on socket I/O for most of their life (the compute-heavy stages run on the
/// shared linalg pool), so oversubscribing the cores 2× keeps them busy
/// without letting a big machine spawn hundreds of idle stacks.
pub fn default_workers() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (2 * cores).clamp(1, 64)
}

/// Configuration of a [`ConnectionRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker-pool size; clamped to `1..=MAX_WORKERS`.
    pub workers: usize,
    /// Accepted connections waiting for a worker beyond this count are shed
    /// with `503 Retry-After`.
    pub queue_capacity: usize,
    /// `Retry-After` hint (seconds) sent with shed connections.
    pub retry_after_secs: u32,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: default_workers(),
            queue_capacity: 128,
            retry_after_secs: 1,
        }
    }
}

/// Live occupancy counters, updated lock-free by the acceptor and workers.
///
/// `total_requests / total_connections` is the keep-alive reuse ratio: 1.0
/// means every connection carried exactly one request (no reuse); a serving
/// workload with persistent clients should sit well above it.
#[derive(Debug, Default)]
pub struct RuntimeMetrics {
    /// Connections currently owned by workers.
    pub active_connections: Gauge,
    /// Accepted connections waiting for a worker.
    pub queue_depth: Gauge,
    /// Connections ever accepted (including shed ones).
    pub total_connections: Counter,
    /// HTTP requests served across all connections (incremented by the
    /// protocol handler, one per parsed request).
    pub total_requests: Counter,
    /// Connections answered `503` because the queue was full.
    pub shed_connections: Counter,
    /// Request handlers that panicked (caught at the connection boundary).
    pub worker_panics: Counter,
    /// Requests answered `504` because their deadline (which covers queue
    /// wait, not just compute) expired.
    pub deadline_expired: Counter,
    /// Requests answered `429` by the per-peer token bucket or the per-source
    /// fair-share gate.
    pub rate_limited: Counter,
    /// Requests answered degraded (`503`) by the pressure ladder instead of
    /// paying a cold start.
    pub degraded_responses: Counter,
}

impl RuntimeMetrics {
    /// Requests per connection (0 when nothing connected yet).
    pub fn reuse_ratio(&self) -> f64 {
        let connections = self.total_connections.get();
        if connections == 0 {
            0.0
        } else {
            self.total_requests.get() as f64 / connections as f64
        }
    }
}

/// A shutdown flag shared between the runtime, its workers and the protocol
/// handler.  [`trigger`](Self::trigger) is idempotent and safe to call from
/// a worker thread (the `/shutdown` route) or from outside.
#[derive(Debug, Default)]
pub struct ShutdownSignal {
    flag: AtomicBool,
    /// The listener's bound address; set by the runtime so `trigger` can
    /// wake the blocking accept with a throwaway connection.
    addr: Mutex<Option<std::net::SocketAddr>>,
}

impl ShutdownSignal {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes the acceptor.  Returns immediately; use
    /// [`ConnectionRuntime::join`] to wait for the drain.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let addr = *self.addr.lock().unwrap();
        if let Some(addr) = addr {
            // Wake the blocking accept; the acceptor re-checks the flag
            // before handing any connection to the pool.
            let _ = TcpStream::connect(addr);
        }
    }

    fn bind(&self, addr: std::net::SocketAddr) {
        *self.addr.lock().unwrap() = Some(addr);
    }
}

struct Queue {
    state: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    /// Each queued connection carries its accept timestamp, so the protocol
    /// layer can charge queue wait against the request deadline.
    connections: VecDeque<(TcpStream, Instant)>,
    closed: bool,
}

impl Queue {
    fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                connections: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues if below `capacity`; the rejected stream comes back for
    /// shedding.  The depth gauge is incremented under the queue lock so it
    /// never counts rejected connections and a worker's decrement (which can
    /// only follow a successful pop, hence this lock) is always ordered
    /// after it.
    fn push(&self, stream: TcpStream, capacity: usize, depth: &Gauge) -> Result<(), TcpStream> {
        let mut state = self.state.lock().unwrap();
        if state.closed || state.connections.len() >= capacity {
            return Err(stream);
        }
        state.connections.push_back((stream, Instant::now()));
        depth.inc();
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next connection (with its accept timestamp); `None`
    /// once the queue is closed **and** drained — the worker's signal to
    /// exit.
    fn pop(&self) -> Option<(TcpStream, Instant)> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(entry) = state.connections.pop_front() {
                return Some(entry);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }
}

/// A running acceptor + worker pool bound to one listener.
pub struct ConnectionRuntime {
    accept_thread: Option<std::thread::JoinHandle<()>>,
    metrics: Arc<RuntimeMetrics>,
    shutdown: Arc<ShutdownSignal>,
    workers: usize,
}

impl ConnectionRuntime {
    /// Starts the pool and the accept loop.  `handler` owns each connection
    /// for its lifetime (the keep-alive loop) and runs on a pool worker
    /// under a panic guard: a panic that unwinds out of it drops the
    /// connection, increments `worker_panics`, and the worker lives on to
    /// serve the next connection — the pool never shrinks.
    ///
    /// `metrics` is caller-supplied so the protocol layer can hold the same
    /// handle (it increments `total_requests` and `worker_panics`) and report
    /// everything through one `/stats` snapshot.
    pub fn start(
        listener: TcpListener,
        config: RuntimeConfig,
        shutdown: Arc<ShutdownSignal>,
        metrics: Arc<RuntimeMetrics>,
        handler: Arc<dyn Fn(TcpStream, Instant) + Send + Sync>,
    ) -> std::io::Result<ConnectionRuntime> {
        let addr = listener.local_addr()?;
        shutdown.bind(addr);
        let workers = config.workers.clamp(1, MAX_WORKERS);
        let queue = Arc::new(Queue::new());

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            let handler = Arc::clone(&handler);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("htc-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some((stream, accepted_at)) = queue.pop() {
                            metrics.queue_depth.dec();
                            metrics.active_connections.inc();
                            // The protocol handler catches panics per
                            // request; this guard is the backstop for
                            // anything that escapes it (e.g. a response
                            // *writer* panic), so a bug costs one connection
                            // — never a worker, and never a drifting gauge.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handler(stream, accepted_at)
                                }));
                            metrics.active_connections.dec();
                            if outcome.is_err() {
                                metrics.worker_panics.inc();
                            }
                        }
                    })?,
            );
        }

        let accept_metrics = Arc::clone(&metrics);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("htc-serve-accept".into())
            .spawn(move || {
                accept_loop(listener, &config, &queue, &accept_metrics, &accept_shutdown);
                // Drain deterministically: no new connections, already-queued
                // ones are still served, then every worker is joined.
                queue.close();
                for handle in worker_handles {
                    let _ = handle.join();
                }
            })?;

        Ok(ConnectionRuntime {
            accept_thread: Some(accept_thread),
            metrics,
            shutdown,
            workers,
        })
    }

    pub fn metrics(&self) -> Arc<RuntimeMetrics> {
        Arc::clone(&self.metrics)
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Waits until the accept loop has exited and every worker is joined.
    /// Call [`ShutdownSignal::trigger`] (or POST `/shutdown`) to initiate.
    pub fn join(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ConnectionRuntime {
    fn drop(&mut self) {
        // RAII backstop: a runtime dropped without an explicit shutdown still
        // stops accepting and joins every worker instead of hanging or
        // leaking detached threads.
        self.shutdown.trigger();
        self.join();
    }
}

fn accept_loop(
    listener: TcpListener,
    config: &RuntimeConfig,
    queue: &Queue,
    metrics: &RuntimeMetrics,
    shutdown: &ShutdownSignal,
) {
    let capacity = config.queue_capacity.max(1);
    for stream in listener.incoming() {
        if shutdown.is_triggered() {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        // Keep-alive exchanges are small request/response turns; Nagle's
        // algorithm pairing with delayed ACKs would add ~40ms to every turn
        // on a warm connection.
        let _ = stream.set_nodelay(true);
        metrics.total_connections.inc();
        match queue.push(stream, capacity, &metrics.queue_depth) {
            Ok(()) => {}
            Err(rejected) => {
                metrics.shed_connections.inc();
                shed(rejected, config.retry_after_secs, metrics.queue_depth.get());
            }
        }
    }
}

/// Sheds one over-capacity connection: writes the `503 Retry-After`, sends
/// FIN, then briefly drains whatever request bytes the peer already sent.
/// Dropping the socket with unread bytes pending would RST and frequently
/// destroy the in-flight 503 — the client would see "connection reset"
/// instead of the explicit backoff hint.  All waits are tightly bounded
/// because this runs on the acceptor thread: a well-behaved peer drains in
/// one non-blocking read; a hostile one costs at most ~160 ms.
fn shed(mut rejected: TcpStream, retry_after_secs: u32, queue_depth: u64) {
    rejected
        .set_write_timeout(Some(Duration::from_secs(1)))
        .ok();
    let body = format!(
        "{{\"error\":\"server is at capacity\",\"kind\":\"overloaded\",\
         \"retry_after_ms\":{},\"queue_depth\":{queue_depth}}}",
        u64::from(retry_after_secs) * 1000,
    );
    let written = write_retry_after(&mut rejected, retry_after_secs, &body);
    if written.is_err() {
        return;
    }
    let _ = rejected.shutdown(std::net::Shutdown::Write);
    rejected
        .set_read_timeout(Some(Duration::from_millis(20)))
        .ok();
    let mut sink = [0u8; 4096];
    for _ in 0..8 {
        match rejected.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn default_workers_is_bounded() {
        let n = default_workers();
        assert!((1..=64).contains(&n));
    }

    #[test]
    fn reuse_ratio_divides_requests_by_connections() {
        let m = RuntimeMetrics::default();
        assert_eq!(m.reuse_ratio(), 0.0);
        m.total_connections.inc();
        m.total_connections.inc();
        m.total_requests.add(6);
        assert!((m.reuse_ratio() - 3.0).abs() < 1e-12);
    }

    /// Pool mechanics without HTTP: connections are served by exactly
    /// `workers` threads, excess queues, and shutdown drains deterministically.
    #[test]
    fn pool_serves_queues_and_drains() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(ShutdownSignal::new());
        let handler: Arc<dyn Fn(TcpStream, Instant) + Send + Sync> =
            Arc::new(|mut stream: TcpStream, _accepted: Instant| {
                let mut byte = [0u8; 1];
                // Echo one byte, then close: the "request" is the byte itself.
                if stream.read_exact(&mut byte).is_ok() {
                    let _ = stream.write_all(&byte);
                }
            });
        let mut runtime = ConnectionRuntime::start(
            listener,
            RuntimeConfig {
                workers: 2,
                queue_capacity: 16,
                retry_after_secs: 1,
            },
            Arc::clone(&shutdown),
            Arc::new(RuntimeMetrics::default()),
            handler,
        )
        .unwrap();
        let metrics = runtime.metrics();

        // 6 concurrent connections through 2 workers: all complete.
        let clients: Vec<_> = (0..6u8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(10)))
                        .unwrap();
                    stream.write_all(&[i]).unwrap();
                    let mut echoed = [0u8; 1];
                    stream.read_exact(&mut echoed).unwrap();
                    echoed[0]
                })
            })
            .collect();
        let mut echoes: Vec<u8> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        echoes.sort_unstable();
        assert_eq!(echoes, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(metrics.total_connections.get(), 6);

        shutdown.trigger();
        runtime.join();
        // After join, the gauges are settled: nothing active, nothing queued.
        assert_eq!(metrics.active_connections.get(), 0);
        assert_eq!(metrics.queue_depth.get(), 0);
        assert!(metrics.active_connections.high_water() <= 2);
    }

    /// A handler panic costs one connection, never a worker: the pool keeps
    /// serving, the gauges settle, and the panic is counted.
    #[test]
    fn handler_panic_does_not_kill_the_worker() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(ShutdownSignal::new());
        let handler: Arc<dyn Fn(TcpStream, Instant) + Send + Sync> =
            Arc::new(|mut stream: TcpStream, _accepted: Instant| {
                let mut byte = [0u8; 1];
                stream.read_exact(&mut byte).unwrap();
                if byte[0] == b'!' {
                    panic!("injected handler failure");
                }
                stream.write_all(&byte).unwrap();
            });
        let mut runtime = ConnectionRuntime::start(
            listener,
            RuntimeConfig {
                workers: 1,
                queue_capacity: 4,
                retry_after_secs: 1,
            },
            Arc::clone(&shutdown),
            Arc::new(RuntimeMetrics::default()),
            handler,
        )
        .unwrap();
        let metrics = runtime.metrics();

        // First connection makes the (single) worker panic...
        let mut poison = TcpStream::connect(addr).unwrap();
        poison.write_all(b"!").unwrap();
        let mut end = Vec::new();
        let _ = poison.read_to_end(&mut end); // connection dropped by the guard

        // ...and the same worker still serves the next connection.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(b"a").unwrap();
        let mut echoed = [0u8; 1];
        stream.read_exact(&mut echoed).unwrap();
        assert_eq!(&echoed, b"a");
        assert_eq!(metrics.worker_panics.get(), 1);

        shutdown.trigger();
        runtime.join();
        assert_eq!(metrics.active_connections.get(), 0);
    }

    /// A full queue sheds with 503 + Retry-After written by the acceptor.
    #[test]
    fn full_queue_sheds_with_retry_after() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(ShutdownSignal::new());
        // The handler announces itself, then parks until released — which
        // lets the test sequence "worker busy" and "queue full"
        // deterministically instead of racing the accept loop.
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        let handler: Arc<dyn Fn(TcpStream, Instant) + Send + Sync> =
            Arc::new(move |_stream: TcpStream, _accepted: Instant| {
                let _ = started_tx.send(());
                let _ = release_rx.lock().unwrap().recv();
            });
        let mut runtime = ConnectionRuntime::start(
            listener,
            RuntimeConfig {
                workers: 1,
                queue_capacity: 1,
                retry_after_secs: 7,
            },
            Arc::clone(&shutdown),
            Arc::new(RuntimeMetrics::default()),
            handler,
        )
        .unwrap();
        // Rebind after the runtime so an assert failure unwinds in the right
        // order: the sender drops first, releasing any parked handler, and
        // only then does the runtime's Drop join its workers.
        let release_tx = release_tx;
        let metrics = runtime.metrics();

        // First connection occupies the worker (wait for its handler)...
        let held_a = TcpStream::connect(addr).unwrap();
        started_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("worker picked up the first connection");
        // ...second fills the queue (the worker is parked, so it stays).
        let held_b = TcpStream::connect(addr).unwrap();
        for _ in 0..200 {
            if metrics.queue_depth.get() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(metrics.active_connections.get(), 1);
        assert_eq!(metrics.queue_depth.get(), 1);

        // Third connection: shed.
        let mut shed = TcpStream::connect(addr).unwrap();
        shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut response = String::new();
        shed.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 503"), "{response}");
        assert!(response.contains("Retry-After: 7"), "{response}");
        assert!(response.contains("overloaded"), "{response}");
        assert_eq!(metrics.shed_connections.get(), 1);

        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        shutdown.trigger();
        runtime.join();
        drop(held_a);
        drop(held_b);
        assert_eq!(metrics.queue_depth.get(), 0);
    }
}
