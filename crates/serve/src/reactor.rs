//! The event-driven readiness loop that parks idle keep-alive sockets.
//!
//! PR 4's worker pool still dedicated one worker to one connection for the
//! connection's whole keep-alive lifetime, so a few thousand idle (or
//! deliberately slow) persistent clients exhausted the pool and starved live
//! traffic.  This module turns worker occupancy into *per in-flight request*:
//! between requests a connection lives here, registered with the kernel's
//! readiness facility, and only when its socket becomes readable is it handed
//! (back) to the bounded worker queue.  Ten thousand idle clients now cost
//! ten thousand parked sockets and **zero** worker threads.
//!
//! Matching the crate's zero-dependency HTTP stack, the loop is hand-rolled
//! on raw syscalls declared via `extern "C"` (the same trick `signal.rs`
//! uses): `epoll` on Linux, `kqueue` on macOS/BSD.  No libc crate, no mio.
//!
//! Design notes:
//!
//! * **Level-triggered readiness over blocking sockets.**  Readiness and
//!   blocking mode are independent; the sockets stay blocking so the HTTP
//!   layer's timeout machinery is untouched.  Level-triggering also closes
//!   the park race: if bytes land between "worker saw an empty buffer" and
//!   "reactor registered the fd", the next wait still reports it readable.
//! * **Idle deadlines live in a timer wheel,** not in per-worker 100 ms poll
//!   slices: the loop sleeps until the next armed deadline (or forever when
//!   nothing is parked), so an idle parked connection generates **no
//!   wakeups** between timer ticks — the regression test in
//!   `tests/runtime_keepalive.rs` holds the loop to that.
//! * **A self-wake pipe** is registered alongside the sockets: workers and
//!   the acceptor push new parkees into an inbox and write one byte; drain
//!   pokes the same pipe.  The loop therefore never needs a polling slice to
//!   notice work or shutdown.
//! * **The reactor never blocks on a peer.**  Dispatch pushes into the
//!   bounded worker queue; when the queue is full the connection is shed
//!   with the same bounded-write `503 Retry-After` path the acceptor used
//!   to apply, and expired idle connections are simply dropped (exactly the
//!   old `AwaitOutcome::IdleTimeout` behaviour).
//!
//! Shutdown keeps PR 4's drain contract: the acceptor exits first, then
//! [`Reactor::drain_and_join`] closes every parked socket and joins the
//! loop, then the queue closes and every worker is joined.

use crate::runtime::{shed_conn, Conn, Queue, RuntimeMetrics};
use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Raw syscall surface for Linux: `epoll` plus a non-blocking pipe.  The
/// constants are the kernel ABI (stable since 2.6) — the values `libc`
/// would otherwise provide.
#[cfg(target_os = "linux")]
mod sys {
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const O_NONBLOCK: i32 = 0o4000;
    pub const O_CLOEXEC: i32 = 0o2000000;

    /// `struct epoll_event`; packed on x86 (the kernel ABI there), naturally
    /// aligned everywhere else.
    #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct Event {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct Event {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout_ms: i32) -> i32;
        pub fn pipe2(fds: *mut i32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

/// Raw syscall surface for the kqueue family (macOS layout; the BSDs differ
/// only in padding fields this module never reads).
#[cfg(not(target_os = "linux"))]
mod sys {
    pub const EVFILT_READ: i16 = -1;
    pub const EV_ADD: u16 = 0x1;
    pub const EV_DELETE: u16 = 0x2;
    pub const EV_EOF: u16 = 0x8000;
    pub const F_SETFL: i32 = 4;
    pub const F_SETFD: i32 = 2;
    pub const FD_CLOEXEC: i32 = 1;
    pub const O_NONBLOCK: i32 = 0x4;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct Kevent {
        pub ident: usize,
        pub filter: i16,
        pub flags: u16,
        pub fflags: u32,
        pub data: isize,
        pub udata: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct Timespec {
        pub tv_sec: i64,
        pub tv_nsec: i64,
    }

    extern "C" {
        pub fn kqueue() -> i32;
        pub fn kevent(
            kq: i32,
            changelist: *const Kevent,
            nchanges: i32,
            eventlist: *mut Kevent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, ...) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

/// An owned raw file descriptor, closed on drop.
struct OwnedFd(RawFd);

impl Drop for OwnedFd {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.0);
        }
    }
}

/// One readiness report from the poller.
struct Ready {
    token: u64,
    /// Bytes (or an EOF) are waiting: dispatch to a worker, which observes
    /// the actual data-vs-EOF distinction through its normal reads.
    readable: bool,
    /// The peer hung up (or the socket errored).  Dispatch still happens —
    /// buffered bytes before a FIN are a final pipelined request — but an
    /// overflowing queue drops these silently instead of writing a `503` to
    /// a peer that is no longer listening (a mass disconnect is not load).
    hup: bool,
}

/// The kernel readiness facility behind one fd: epoll or kqueue.
struct Poller {
    fd: OwnedFd,
}

#[cfg(target_os = "linux")]
impl Poller {
    fn new() -> io::Result<Poller> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::other("epoll_create1 failed"));
        }
        Ok(Poller { fd: OwnedFd(fd) })
    }

    fn add(&self, fd: RawFd, token: u64) -> io::Result<()> {
        let mut event = sys::Event {
            events: sys::EPOLLIN | sys::EPOLLRDHUP,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.fd.0, sys::EPOLL_CTL_ADD, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::other("epoll_ctl(ADD) failed"));
        }
        Ok(())
    }

    fn del(&self, fd: RawFd) {
        // The event argument is ignored for DEL but must be non-null on
        // pre-2.6.9 kernels; pass a dummy either way.
        let mut event = sys::Event { events: 0, data: 0 };
        unsafe {
            sys::epoll_ctl(self.fd.0, sys::EPOLL_CTL_DEL, fd, &mut event);
        }
    }

    /// Waits for readiness; `None` blocks until an event (the wake pipe
    /// guarantees liveness).  An interrupted wait reports zero events.
    fn wait(&self, out: &mut Vec<Ready>, timeout: Option<Duration>) {
        out.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up: truncating a 0.4 ms remainder to zero would spin.
            Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
        };
        let mut buf = [sys::Event { events: 0, data: 0 }; 128];
        let n =
            unsafe { sys::epoll_wait(self.fd.0, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
        for event in buf.iter().take(n.max(0) as usize) {
            let ev = *event;
            let bits = ev.events;
            out.push(Ready {
                token: ev.data,
                readable: bits & sys::EPOLLIN != 0,
                hup: bits & (sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
    }
}

#[cfg(not(target_os = "linux"))]
impl Poller {
    fn new() -> io::Result<Poller> {
        let fd = unsafe { sys::kqueue() };
        if fd < 0 {
            return Err(io::Error::other("kqueue failed"));
        }
        unsafe {
            sys::fcntl(fd, sys::F_SETFD, sys::FD_CLOEXEC);
        }
        Ok(Poller { fd: OwnedFd(fd) })
    }

    fn add(&self, fd: RawFd, token: u64) -> io::Result<()> {
        let change = sys::Kevent {
            ident: fd as usize,
            filter: sys::EVFILT_READ,
            flags: sys::EV_ADD,
            fflags: 0,
            data: 0,
            udata: token as usize,
        };
        let rc = unsafe {
            sys::kevent(
                self.fd.0,
                &change,
                1,
                std::ptr::null_mut(),
                0,
                std::ptr::null(),
            )
        };
        if rc < 0 {
            return Err(io::Error::other("kevent(EV_ADD) failed"));
        }
        Ok(())
    }

    fn del(&self, fd: RawFd) {
        let change = sys::Kevent {
            ident: fd as usize,
            filter: sys::EVFILT_READ,
            flags: sys::EV_DELETE,
            fflags: 0,
            data: 0,
            udata: 0,
        };
        unsafe {
            sys::kevent(
                self.fd.0,
                &change,
                1,
                std::ptr::null_mut(),
                0,
                std::ptr::null(),
            );
        }
    }

    fn wait(&self, out: &mut Vec<Ready>, timeout: Option<Duration>) {
        out.clear();
        let ts;
        let ts_ptr = match timeout {
            None => std::ptr::null(),
            Some(d) => {
                ts = sys::Timespec {
                    tv_sec: d.as_secs() as i64,
                    tv_nsec: d.subsec_nanos() as i64,
                };
                &ts as *const sys::Timespec
            }
        };
        let mut buf = [sys::Kevent {
            ident: 0,
            filter: 0,
            flags: 0,
            fflags: 0,
            data: 0,
            udata: 0,
        }; 128];
        let n = unsafe {
            sys::kevent(
                self.fd.0,
                std::ptr::null(),
                0,
                buf.as_mut_ptr(),
                buf.len() as i32,
                ts_ptr,
            )
        };
        for event in buf.iter().take(n.max(0) as usize) {
            // A read filter fires for data *or* EOF; either way the socket
            // needs a worker (EV_EOF with pending data is a final pipelined
            // request).  Treat both as readable — the worker's read tells
            // them apart, matching the epoll EPOLLIN|EPOLLRDHUP behaviour.
            out.push(Ready {
                token: event.udata as u64,
                readable: event.data > 0 || event.flags & sys::EV_EOF == 0,
                hup: event.flags & sys::EV_EOF != 0,
            });
        }
    }
}

/// The self-wake pipe: both ends non-blocking, write end poked by producers.
struct WakePipe {
    read_fd: OwnedFd,
    write_fd: OwnedFd,
}

impl WakePipe {
    #[cfg(target_os = "linux")]
    fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::other("pipe2 failed"));
        }
        Ok(WakePipe {
            read_fd: OwnedFd(fds[0]),
            write_fd: OwnedFd(fds[1]),
        })
    }

    #[cfg(not(target_os = "linux"))]
    fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        let rc = unsafe { sys::pipe(fds.as_mut_ptr()) };
        if rc < 0 {
            return Err(io::Error::other("pipe failed"));
        }
        for fd in fds {
            unsafe {
                sys::fcntl(fd, sys::F_SETFL, sys::O_NONBLOCK);
                sys::fcntl(fd, sys::F_SETFD, sys::FD_CLOEXEC);
            }
        }
        Ok(WakePipe {
            read_fd: OwnedFd(fds[0]),
            write_fd: OwnedFd(fds[1]),
        })
    }

    /// Pokes the loop.  A full pipe means a wake is already pending — the
    /// failed write is exactly as good as a successful one.
    fn wake(&self) {
        let byte = [1u8];
        unsafe {
            sys::write(self.write_fd.0, byte.as_ptr(), 1);
        }
    }

    /// Swallows every pending wake byte (non-blocking).
    fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.read_fd.0, sink.as_mut_ptr(), sink.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

/// A hashed timer wheel holding idle deadlines, one revolution wide (every
/// deadline is `now + idle_timeout`, so the horizon is fixed).  Slot width
/// is `idle_timeout / 4` clamped to 10–500 ms: coarse enough that ten
/// thousand parked connections arm a handful of ticks, fine enough that an
/// idle connection closes within a quarter of its budget past the deadline.
struct Wheel {
    slots: Vec<Vec<(u64, u64)>>,
    tick: Duration,
    idle_ticks: u64,
    epoch: Instant,
    processed: u64,
    armed: usize,
}

impl Wheel {
    fn new(idle_timeout: Duration) -> Wheel {
        let tick = (idle_timeout / 4)
            .max(Duration::from_millis(10))
            .min(Duration::from_millis(500));
        let idle_ticks = idle_timeout.as_nanos().div_ceil(tick.as_nanos()).max(1) as u64 + 1;
        Wheel {
            slots: vec![Vec::new(); idle_ticks as usize + 2],
            tick,
            idle_ticks,
            epoch: Instant::now(),
            processed: 0,
            armed: 0,
        }
    }

    fn now_tick(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() / self.tick.as_nanos()) as u64
    }

    /// Arms `token` to expire at `expires` (an absolute tick).
    fn insert(&mut self, token: u64, expires: u64) {
        let slot = (expires % self.slots.len() as u64) as usize;
        self.slots[slot].push((token, expires));
        self.armed += 1;
    }

    /// Disarms a token that was dispatched before its deadline.
    fn cancel(&mut self, token: u64, expires: u64) {
        let slot = (expires % self.slots.len() as u64) as usize;
        if let Some(pos) = self.slots[slot].iter().position(|&(t, _)| t == token) {
            self.slots[slot].swap_remove(pos);
            self.armed -= 1;
        }
    }

    /// When the loop must wake next: the earliest armed deadline, or never.
    fn next_deadline(&self) -> Option<Instant> {
        if self.armed == 0 {
            return None;
        }
        let len = self.slots.len() as u64;
        for tick in self.processed + 1..=self.processed + len {
            let slot = (tick % len) as usize;
            if self.slots[slot].iter().any(|&(_, e)| e == tick) {
                return Some(self.epoch + self.tick * tick as u32);
            }
        }
        None
    }

    /// Advances to `now_tick`, returning every expired token.
    fn advance(&mut self, now_tick: u64) -> Vec<u64> {
        let mut expired = Vec::new();
        if now_tick <= self.processed {
            return expired;
        }
        let len = self.slots.len() as u64;
        let span = (now_tick - self.processed).min(len);
        for step in 1..=span {
            let slot = ((self.processed + step) % len) as usize;
            self.slots[slot].retain(|&(token, expires)| {
                if expires <= now_tick {
                    expired.push(token);
                    false
                } else {
                    true
                }
            });
        }
        self.armed -= expired.len();
        self.processed = now_tick;
        expired
    }
}

/// State shared between the loop and its producers (workers, acceptor).
struct Shared {
    inbox: Mutex<Vec<Conn>>,
    draining: AtomicBool,
    wake: WakePipe,
}

/// A cloneable handle for parking connections into the reactor.
#[derive(Clone)]
pub(crate) struct ReactorHandle {
    shared: Arc<Shared>,
}

impl ReactorHandle {
    /// Parks a connection until it becomes readable or its idle deadline
    /// fires.  During drain the connection is simply closed — the reactor
    /// stops taking wards once shutdown begins.
    pub(crate) fn park(&self, conn: Conn) {
        if self.shared.draining.load(Ordering::SeqCst) {
            return; // dropping the Conn closes the socket
        }
        self.shared.inbox.lock().unwrap().push(conn);
        self.shared.wake.wake();
    }
}

/// A parked connection and the tick its idle budget expires on.
struct ParkedConn {
    conn: Conn,
    expires: u64,
}

/// The running readiness loop.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Reactor {
    /// Starts the loop.  Readable parked connections are pushed into
    /// `queue` (bounded by `queue_capacity`; overflow is shed with
    /// `503 Retry-After`); connections idle past `idle_timeout` are closed.
    pub(crate) fn start(
        idle_timeout: Duration,
        queue: Arc<Queue>,
        metrics: Arc<RuntimeMetrics>,
        queue_capacity: usize,
        retry_after_secs: u32,
    ) -> io::Result<Reactor> {
        let poller = Poller::new()?;
        let shared = Arc::new(Shared {
            inbox: Mutex::new(Vec::new()),
            draining: AtomicBool::new(false),
            wake: WakePipe::new()?,
        });
        // Token 0 is the wake pipe; connections start at 1.
        poller.add(shared.read_fd(), 0)?;
        let loop_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("htc-serve-reactor".into())
            .spawn(move || {
                run(
                    poller,
                    loop_shared,
                    idle_timeout,
                    queue,
                    metrics,
                    queue_capacity,
                    retry_after_secs,
                );
            })?;
        Ok(Reactor {
            shared,
            thread: Some(thread),
        })
    }

    pub(crate) fn handle(&self) -> ReactorHandle {
        ReactorHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Ends the loop: every parked socket is closed (reaped), the thread is
    /// joined.  Parks arriving after this point close their connection
    /// immediately.
    pub(crate) fn drain_and_join(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.wake.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

impl Shared {
    fn read_fd(&self) -> RawFd {
        self.wake.read_fd.0
    }
}

#[allow(clippy::too_many_arguments)]
fn run(
    poller: Poller,
    shared: Arc<Shared>,
    idle_timeout: Duration,
    queue: Arc<Queue>,
    metrics: Arc<RuntimeMetrics>,
    queue_capacity: usize,
    retry_after_secs: u32,
) {
    let mut wheel = Wheel::new(idle_timeout);
    let mut parked: HashMap<u64, ParkedConn> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut events: Vec<Ready> = Vec::with_capacity(128);
    loop {
        let timeout = wheel
            .next_deadline()
            .map(|deadline| deadline.saturating_duration_since(Instant::now()));
        poller.wait(&mut events, timeout);
        metrics.reactor_wakeups.inc();
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        // 1. Kernel-reported readiness: dispatch (or reap a hung-up socket).
        for ready in &events {
            if ready.token == 0 {
                shared.wake.drain();
                continue;
            }
            let Some(entry) = parked.remove(&ready.token) else {
                continue; // raced with its own idle expiry this iteration
            };
            wheel.cancel(ready.token, entry.expires);
            poller.del(entry.conn.raw_fd());
            metrics.parked.dec();
            if ready.readable {
                dispatch(
                    entry.conn,
                    &queue,
                    &metrics,
                    queue_capacity,
                    retry_after_secs,
                    ready.hup,
                );
            }
            // else: HUP/ERR with nothing to read — the peer vanished while
            // parked; dropping the Conn closes our half.
        }
        // 2. Newly parked connections from workers and the acceptor.
        let incoming: Vec<Conn> = std::mem::take(&mut *shared.inbox.lock().unwrap());
        for conn in incoming {
            let token = next_token;
            next_token += 1;
            if poller.add(conn.raw_fd(), token).is_err() {
                continue; // dropping the Conn closes the socket
            }
            let expires = wheel.now_tick() + wheel.idle_ticks;
            wheel.insert(token, expires);
            parked.insert(token, ParkedConn { conn, expires });
            metrics.parked.inc();
        }
        // 3. Idle deadlines.
        for token in wheel.advance(wheel.now_tick()) {
            if let Some(entry) = parked.remove(&token) {
                poller.del(entry.conn.raw_fd());
                metrics.parked.dec();
                // Dropping the Conn closes it — the old IdleTimeout path.
            }
        }
    }
    // Drain sweep: reap every parked socket and any in-flight parkee, so a
    // SIGTERM with thousands of parked connections leaves nothing behind.
    for (_, entry) in parked.drain() {
        poller.del(entry.conn.raw_fd());
        metrics.parked.dec();
    }
    drop(std::mem::take(&mut *shared.inbox.lock().unwrap()));
}

/// Hands a readable connection to the worker pool, shedding on overflow with
/// the bounded-write `503 Retry-After` the acceptor used for full queues.
fn dispatch(
    mut conn: Conn,
    queue: &Queue,
    metrics: &RuntimeMetrics,
    capacity: usize,
    retry_after_secs: u32,
    peer_gone: bool,
) {
    // The dispatch stamp anchors the burst's request deadline: queue wait
    // counts against the budget, parked idle time does not.
    conn.note_dispatched();
    match queue.push(conn, capacity, &metrics.queue_depth) {
        Ok(()) => {}
        Err(rejected) => {
            if peer_gone {
                // Overflow caused by a disconnect flood (every FIN is
                // "readable"): just close — a 503 to a hung-up peer is a
                // wasted write and a phantom shed in the metrics.
                drop(rejected);
            } else {
                metrics.shed_connections.inc();
                shed_conn(rejected, retry_after_secs, metrics.queue_depth.get());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_arms_cancels_and_expires() {
        let mut wheel = Wheel::new(Duration::from_millis(400));
        // 400 ms idle → 100 ms ticks, 5 idle ticks.
        assert_eq!(wheel.tick, Duration::from_millis(100));
        let expiry_a = wheel.now_tick() + wheel.idle_ticks;
        wheel.insert(1, expiry_a);
        wheel.insert(2, expiry_a + 1);
        assert!(wheel.next_deadline().is_some());
        // Cancelling one leaves the other armed.
        wheel.cancel(1, expiry_a);
        assert_eq!(wheel.armed, 1);
        // Advancing past both deadlines expires only the survivor.
        let expired = wheel.advance(expiry_a + 2);
        assert_eq!(expired, vec![2]);
        assert_eq!(wheel.armed, 0);
        assert!(wheel.next_deadline().is_none());
    }

    #[test]
    fn wheel_handles_long_stalls_past_one_revolution() {
        let mut wheel = Wheel::new(Duration::from_millis(100));
        let expiry = wheel.now_tick() + wheel.idle_ticks;
        wheel.insert(7, expiry);
        // A stall many revolutions long still expires the entry exactly once.
        let expired = wheel.advance(expiry + 10 * wheel.slots.len() as u64);
        assert_eq!(expired, vec![7]);
        assert!(wheel.advance(wheel.processed + 1).is_empty());
    }

    #[test]
    fn wake_pipe_round_trips() {
        let pipe = WakePipe::new().unwrap();
        pipe.wake();
        pipe.wake();
        let mut byte = [0u8; 8];
        let n = unsafe { sys::read(pipe.read_fd.0, byte.as_mut_ptr(), byte.len()) };
        assert!(n >= 1);
        pipe.drain();
        // Empty pipe: the non-blocking read reports nothing instead of
        // blocking the caller.
        let n = unsafe { sys::read(pipe.read_fd.0, byte.as_mut_ptr(), byte.len()) };
        assert!(n <= 0);
    }
}
