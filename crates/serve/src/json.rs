//! Minimal JSON value model, parser and serialiser.
//!
//! The workspace has no network access and therefore no serde; `htc-serve`
//! needs only enough JSON to express align requests (edge lists, attribute
//! matrices, artifact paths) and responses (anchors, weights, timings), so a
//! small recursive-descent parser over a byte slice suffices.  Numbers are
//! kept as `f64` (the payloads are node indices, scores and counts — all
//! exactly representable well past any graph this server can hold in memory).
//!
//! The parser is defensive in the same spirit as `htc_core::persist`: inputs
//! are untrusted network bytes, so depth is bounded (no stack overflow from
//! `[[[[…`), errors carry positions, and nothing panics on malformed input.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser; deeper input is rejected
/// rather than risking the recursion eating the request thread's stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object members in source order (requests are small; linear lookup).
    Obj(Vec<(String, Json)>),
    /// An already-rendered JSON fragment, emitted verbatim — lets emitters
    /// that produce JSON text themselves (the `StageTimer` renderers) embed
    /// into a response without a parse round-trip.  Never produced by
    /// [`parse`]; the caller vouches for its validity.
    Raw(String),
}

impl Json {
    /// Member of an object by key (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, rejecting fractions and values
    /// beyond 2^53 (not exactly representable, hence ambiguous).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
            return None;
        }
        Some(n as usize)
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_to(&mut out)
            .expect("writing to a String cannot fail");
        out
    }

    /// Renders the value as compact JSON text into any [`std::fmt::Write`]
    /// sink — a `String`, or a streaming response body that sends the text
    /// out in chunks instead of materialising it.
    pub fn render_to<W: std::fmt::Write>(&self, out: &mut W) -> std::fmt::Result {
        match self {
            Json::Null => out.write_str("null"),
            Json::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    item.render_to(out)?;
                }
                out.write_char(']')
            }
            Json::Obj(members) => {
                out.write_char('{')?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    render_string(k, out)?;
                    out.write_char(':')?;
                    v.render_to(out)?;
                }
                out.write_char('}')
            }
            Json::Raw(fragment) => out.write_str(fragment),
        }
    }
}

/// Renders a network as the inline spec `POST /align` accepts
/// (`{"num_nodes", "edges": [[u,v],…], "attributes": [[…],…]}`) — the one
/// client-side encoder shared by the examples, the load generator and the
/// integration tests.
pub fn network_spec(network: &htc_graph::AttributedNetwork) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"num_nodes\":{},\"edges\":[", network.num_nodes());
    for (i, &(u, v)) in network.graph().edges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{u},{v}]");
    }
    out.push_str("],\"attributes\":[");
    for u in 0..network.num_nodes() {
        if u > 0 {
            out.push(',');
        }
        out.push('[');
        for (i, &v) in network.node_attributes(u).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// Writes a number exactly as [`Json::render`] would — the single source of
/// truth for number formatting, shared with streaming emitters that write
/// values without building a [`Json`] tree first.
pub fn write_num<W: std::fmt::Write>(out: &mut W, n: f64) -> std::fmt::Result {
    if n.is_finite() {
        // Integral values print without a trailing ".0" so node indices look
        // like indices.
        if n.fract() == 0.0 && n.abs() < 9e15 {
            write!(out, "{}", n as i64)
        } else {
            write!(out, "{n}")
        }
    } else {
        // JSON has no NaN/Infinity; null is the least-bad option.
        out.write_str("null")
    }
}

/// Convenience constructors used all over the response-building code.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
    Json::Arr(items.into_iter().collect())
}

pub fn num(n: f64) -> Json {
    Json::Num(n)
}

pub fn str(s: impl Into<String>) -> Json {
    Json::Str(s.into())
}

fn render_string<W: std::fmt::Write>(s: &str, out: &mut W) -> std::fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32)?;
            }
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// Parses `text` as a single JSON value (trailing garbage is an error).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text
            .parse()
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number {text:?} at byte {start}"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this server's
                            // payloads; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!("unknown escape \\{}", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trippable_values() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"nested": true}, "s": "x\"y", "n": null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_usize(), Some(1));
        assert_eq!(
            v.get("b").unwrap().get("nested").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("n"), Some(&Json::Null));
        // Render → parse is a fixpoint.
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\": 01x}",
            "[1]]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
    }

    #[test]
    fn render_escapes_strings() {
        assert_eq!(str("a\"b\n").render(), "\"a\\\"b\\n\"");
        assert_eq!(num(3.0).render(), "3");
        assert_eq!(num(0.25).render(), "0.25");
        assert_eq!(obj(vec![("k", Json::Null)]).render(), "{\"k\":null}");
    }

    #[test]
    fn raw_fragments_embed_verbatim() {
        let v = obj(vec![("stages", Json::Raw("[{\"stage\":\"x\"}]".into()))]);
        let rendered = v.render();
        assert_eq!(rendered, "{\"stages\":[{\"stage\":\"x\"}]}");
        // The embedded fragment round-trips through the parser as structure.
        assert!(parse(&rendered)
            .unwrap()
            .get("stages")
            .unwrap()
            .as_arr()
            .is_some());
    }
}
