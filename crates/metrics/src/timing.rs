//! Stage timing and runtime instrumentation.
//!
//! The efficiency analysis of the paper (Fig. 7 and Fig. 8) breaks the HTC
//! runtime into named stages (orbit counting, Laplacian construction,
//! multi-orbit-aware training, trusted-pair fine-tuning, weighted integration,
//! other).  [`StageTimer`] accumulates wall-clock durations per named stage
//! while preserving insertion order so the harness can print the same
//! decomposition.
//!
//! Long-running serving processes additionally need live occupancy figures —
//! how many connections are active, how deep the worker queue is — that many
//! threads update concurrently.  [`Counter`] (monotonic) and [`Gauge`]
//! (up/down with a high-water mark) are the lock-free primitives for those;
//! the `htc-serve` connection runtime exposes them through `/stats`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonically increasing event counter shared across threads.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one and returns the new value.
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that moves up and down (active connections, queue depth) while
/// remembering the highest point it ever reached.
///
/// Decrements saturate at zero rather than wrapping: a stray extra `dec` is a
/// bookkeeping bug upstream, but it must not turn the gauge into 2^64-1 and
/// poison every later reading.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high_water: AtomicU64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments and returns the new value, updating the high-water mark.
    pub fn inc(&self) -> u64 {
        let now = self.value.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Decrements (saturating at zero) and returns the new value.
    pub fn dec(&self) -> u64 {
        self.value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            })
            .map(|prev| prev.saturating_sub(1))
            .unwrap_or(0)
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The highest value the gauge ever held.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// One named stage: accumulated duration plus how many times it was recorded,
/// and the highest process peak-RSS reading observed when the stage finished
/// (0 = never sampled, e.g. on platforms without procfs).
#[derive(Debug, Clone)]
struct StageEntry {
    name: String,
    duration: Duration,
    count: usize,
    peak_rss_bytes: u64,
}

/// Accumulates named stage durations in insertion order.
#[derive(Debug, Clone, Default)]
pub struct StageTimer {
    stages: Vec<StageEntry>,
}

impl StageTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times the execution of `body` and records it under `stage`.
    pub fn time<T>(&mut self, stage: &str, body: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let result = body();
        self.record(stage, start.elapsed());
        result
    }

    /// Adds `duration` to the accumulated time of `stage` (creating it if
    /// needed) and increments the stage's occurrence count.
    pub fn record(&mut self, stage: &str, duration: Duration) {
        self.record_with_peak_rss(stage, duration, 0);
    }

    /// [`record`](Self::record) plus a peak-RSS sample (bytes) taken when the
    /// stage finished.  `VmHWM` is monotone, so the entry keeps the maximum of
    /// all samples; pass 0 when no reading is available and the stored value
    /// is left untouched.
    pub fn record_with_peak_rss(&mut self, stage: &str, duration: Duration, peak_rss_bytes: u64) {
        if let Some(entry) = self.stages.iter_mut().find(|e| e.name == stage) {
            entry.duration += duration;
            entry.count += 1;
            entry.peak_rss_bytes = entry.peak_rss_bytes.max(peak_rss_bytes);
        } else {
            self.stages.push(StageEntry {
                name: stage.to_string(),
                duration,
                count: 1,
                peak_rss_bytes,
            });
        }
    }

    /// Accumulated duration of `stage` (zero if never recorded).
    pub fn duration(&self, stage: &str) -> Duration {
        self.stages
            .iter()
            .find(|e| e.name == stage)
            .map(|e| e.duration)
            .unwrap_or_default()
    }

    /// How many times `stage` was recorded (zero if never).
    ///
    /// Reuse-sensitive callers — the session API's "train once, serve many"
    /// guarantee — assert on this: a stage that was served from a cached
    /// artifact is never re-recorded, so its count stays put.
    pub fn count(&self, stage: &str) -> usize {
        self.stages
            .iter()
            .find(|e| e.name == stage)
            .map(|e| e.count)
            .unwrap_or(0)
    }

    /// Highest peak-RSS sample (bytes) recorded for `stage`, or 0 when the
    /// stage was never recorded with a memory reading.
    pub fn peak_rss_bytes(&self, stage: &str) -> u64 {
        self.stages
            .iter()
            .find(|e| e.name == stage)
            .map(|e| e.peak_rss_bytes)
            .unwrap_or(0)
    }

    /// Total accumulated duration across all stages.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|e| e.duration).sum()
    }

    /// Stages in insertion order with their durations.
    pub fn stages(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.stages.iter().map(|e| (e.name.as_str(), e.duration))
    }

    /// Merges another timer into this one (summing shared stages' durations
    /// and occurrence counts).
    pub fn merge(&mut self, other: &StageTimer) {
        for entry in &other.stages {
            if let Some(mine) = self.stages.iter_mut().find(|e| e.name == entry.name) {
                mine.duration += entry.duration;
                mine.count += entry.count;
                mine.peak_rss_bytes = mine.peak_rss_bytes.max(entry.peak_rss_bytes);
            } else {
                self.stages.push(entry.clone());
            }
        }
    }

    /// Renders the stages as a JSON array of `{"stage", "seconds"}` objects,
    /// in insertion order — the one emitter shared by every binary that
    /// writes machine-readable stage timings (`htc-align --json`,
    /// `bench_pipeline`).
    pub fn stages_json(&self) -> String {
        let mut out = String::from("[");
        for (i, entry) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"stage\": \"{}\", \"seconds\": {:.6}}}",
                entry.name.replace('\\', "\\\\").replace('"', "\\\""),
                entry.duration.as_secs_f64()
            ));
        }
        out.push(']');
        out
    }

    /// Renders the stages as a JSON array of
    /// `{"stage", "seconds", "count", "mean_seconds"}` objects, in insertion
    /// order — the occurrence-count-aware variant of
    /// [`stages_json`](Self::stages_json), used by serving processes whose
    /// `/stats` endpoints report how often each stage ran (e.g. to verify a
    /// cached artifact skipped its stage).  Stages recorded with a peak-RSS
    /// sample additionally carry `"peak_rss_bytes"`; stages without one omit
    /// the key so emitters on procfs-less platforms stay byte-identical to
    /// the pre-memory-tracking format.
    pub fn stages_json_detailed(&self) -> String {
        let mut out = String::from("[");
        for (i, entry) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let seconds = entry.duration.as_secs_f64();
            out.push_str(&format!(
                "{{\"stage\": \"{}\", \"seconds\": {seconds:.6}, \"count\": {}, \
                 \"mean_seconds\": {:.6}",
                entry.name.replace('\\', "\\\\").replace('"', "\\\""),
                entry.count,
                seconds / entry.count.max(1) as f64
            ));
            if entry.peak_rss_bytes > 0 {
                out.push_str(&format!(", \"peak_rss_bytes\": {}", entry.peak_rss_bytes));
            }
            out.push('}');
        }
        out.push(']');
        out
    }

    /// Renders a simple per-stage breakdown in seconds.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, d) in self.stages() {
            out.push_str(&format!("{name}: {:.3}s\n", d.as_secs_f64()));
        }
        out.push_str(&format!("total: {:.3}s\n", self.total().as_secs_f64()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        assert_eq!(c.inc(), 1);
        c.add(4);
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.inc();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(c.get(), 405);
    }

    #[test]
    fn gauge_tracks_value_and_high_water() {
        let g = Gauge::new();
        assert_eq!(g.inc(), 1);
        assert_eq!(g.inc(), 2);
        assert_eq!(g.dec(), 1);
        assert_eq!(g.inc(), 2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 2);
        g.dec();
        g.dec();
        // Saturates at zero instead of wrapping.
        assert_eq!(g.dec(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(g.high_water(), 2);
    }

    #[test]
    fn records_and_accumulates() {
        let mut t = StageTimer::new();
        t.record("training", Duration::from_millis(100));
        t.record("training", Duration::from_millis(50));
        t.record("fine-tuning", Duration::from_millis(30));
        assert_eq!(t.duration("training"), Duration::from_millis(150));
        assert_eq!(t.duration("missing"), Duration::ZERO);
        assert_eq!(t.total(), Duration::from_millis(180));
        assert_eq!(t.stages().count(), 2);
        assert_eq!(t.count("training"), 2);
        assert_eq!(t.count("fine-tuning"), 1);
        assert_eq!(t.count("missing"), 0);
    }

    #[test]
    fn time_wraps_closures() {
        let mut t = StageTimer::new();
        let out = t.time("compute", || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        assert!(t.duration("compute") >= Duration::from_millis(4));
    }

    #[test]
    fn preserves_insertion_order() {
        let mut t = StageTimer::new();
        t.record("b", Duration::from_millis(1));
        t.record("a", Duration::from_millis(1));
        t.record("b", Duration::from_millis(1));
        let names: Vec<&str> = t.stages().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
    }

    #[test]
    fn merge_sums_stages() {
        let mut a = StageTimer::new();
        a.record("x", Duration::from_millis(10));
        let mut b = StageTimer::new();
        b.record("x", Duration::from_millis(5));
        b.record("y", Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.duration("x"), Duration::from_millis(15));
        assert_eq!(a.duration("y"), Duration::from_millis(2));
        assert_eq!(a.count("x"), 2);
        assert_eq!(a.count("y"), 1);
    }

    #[test]
    fn render_contains_totals() {
        let mut t = StageTimer::new();
        t.record("stage one", Duration::from_millis(1500));
        let text = t.render();
        assert!(text.contains("stage one: 1.500s"));
        assert!(text.contains("total: 1.500s"));
    }

    #[test]
    fn stages_json_renders_in_order_and_escapes() {
        let mut t = StageTimer::new();
        t.record("b", Duration::from_millis(1500));
        t.record("a \"quoted\"", Duration::from_millis(250));
        assert_eq!(
            t.stages_json(),
            "[{\"stage\": \"b\", \"seconds\": 1.500000}, \
             {\"stage\": \"a \\\"quoted\\\"\", \"seconds\": 0.250000}]"
        );
        assert_eq!(StageTimer::new().stages_json(), "[]");
    }

    #[test]
    fn detailed_json_reports_counts_and_means() {
        let mut t = StageTimer::new();
        t.record("training", Duration::from_millis(100));
        t.record("training", Duration::from_millis(300));
        assert_eq!(
            t.stages_json_detailed(),
            "[{\"stage\": \"training\", \"seconds\": 0.400000, \"count\": 2, \
             \"mean_seconds\": 0.200000}]"
        );
        assert_eq!(StageTimer::new().stages_json_detailed(), "[]");
    }

    #[test]
    fn record_with_peak_rss_keeps_maximum() {
        let mut t = StageTimer::new();
        t.record_with_peak_rss("training", Duration::from_millis(100), 2048);
        t.record_with_peak_rss("training", Duration::from_millis(100), 1024);
        assert_eq!(t.peak_rss_bytes("training"), 2048);
        assert_eq!(t.count("training"), 2);
        // A zero sample (no reading available) never shrinks the mark.
        t.record("training", Duration::from_millis(10));
        assert_eq!(t.peak_rss_bytes("training"), 2048);
        assert_eq!(t.peak_rss_bytes("missing"), 0);
    }

    #[test]
    fn merge_takes_peak_rss_maximum() {
        let mut a = StageTimer::new();
        a.record_with_peak_rss("x", Duration::from_millis(10), 100);
        let mut b = StageTimer::new();
        b.record_with_peak_rss("x", Duration::from_millis(5), 300);
        b.record_with_peak_rss("y", Duration::from_millis(2), 7);
        a.merge(&b);
        assert_eq!(a.peak_rss_bytes("x"), 300);
        assert_eq!(a.peak_rss_bytes("y"), 7);
    }

    #[test]
    fn detailed_json_includes_peak_rss_only_when_sampled() {
        let mut t = StageTimer::new();
        t.record_with_peak_rss("training", Duration::from_millis(200), 4096);
        t.record("matching", Duration::from_millis(100));
        assert_eq!(
            t.stages_json_detailed(),
            "[{\"stage\": \"training\", \"seconds\": 0.200000, \"count\": 1, \
             \"mean_seconds\": 0.200000, \"peak_rss_bytes\": 4096}, \
             {\"stage\": \"matching\", \"seconds\": 0.100000, \"count\": 1, \
             \"mean_seconds\": 0.100000}]"
        );
    }
}
