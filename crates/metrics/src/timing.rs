//! Stage timing instrumentation.
//!
//! The efficiency analysis of the paper (Fig. 7 and Fig. 8) breaks the HTC
//! runtime into named stages (orbit counting, Laplacian construction,
//! multi-orbit-aware training, trusted-pair fine-tuning, weighted integration,
//! other).  [`StageTimer`] accumulates wall-clock durations per named stage
//! while preserving insertion order so the harness can print the same
//! decomposition.

use std::time::{Duration, Instant};

/// Accumulates named stage durations in insertion order.
#[derive(Debug, Clone, Default)]
pub struct StageTimer {
    stages: Vec<(String, Duration)>,
}

impl StageTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times the execution of `body` and records it under `stage`.
    pub fn time<T>(&mut self, stage: &str, body: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let result = body();
        self.record(stage, start.elapsed());
        result
    }

    /// Adds `duration` to the accumulated time of `stage` (creating it if
    /// needed).
    pub fn record(&mut self, stage: &str, duration: Duration) {
        if let Some(entry) = self.stages.iter_mut().find(|(name, _)| name == stage) {
            entry.1 += duration;
        } else {
            self.stages.push((stage.to_string(), duration));
        }
    }

    /// Accumulated duration of `stage` (zero if never recorded).
    pub fn duration(&self, stage: &str) -> Duration {
        self.stages
            .iter()
            .find(|(name, _)| name == stage)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Total accumulated duration across all stages.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }

    /// Stages in insertion order with their durations.
    pub fn stages(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.stages.iter().map(|(name, d)| (name.as_str(), *d))
    }

    /// Merges another timer into this one (summing shared stages).
    pub fn merge(&mut self, other: &StageTimer) {
        for (name, d) in other.stages() {
            self.record(name, d);
        }
    }

    /// Renders a simple per-stage breakdown in seconds.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, d) in self.stages() {
            out.push_str(&format!("{name}: {:.3}s\n", d.as_secs_f64()));
        }
        out.push_str(&format!("total: {:.3}s\n", self.total().as_secs_f64()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_accumulates() {
        let mut t = StageTimer::new();
        t.record("training", Duration::from_millis(100));
        t.record("training", Duration::from_millis(50));
        t.record("fine-tuning", Duration::from_millis(30));
        assert_eq!(t.duration("training"), Duration::from_millis(150));
        assert_eq!(t.duration("missing"), Duration::ZERO);
        assert_eq!(t.total(), Duration::from_millis(180));
        assert_eq!(t.stages().count(), 2);
    }

    #[test]
    fn time_wraps_closures() {
        let mut t = StageTimer::new();
        let out = t.time("compute", || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        assert!(t.duration("compute") >= Duration::from_millis(4));
    }

    #[test]
    fn preserves_insertion_order() {
        let mut t = StageTimer::new();
        t.record("b", Duration::from_millis(1));
        t.record("a", Duration::from_millis(1));
        t.record("b", Duration::from_millis(1));
        let names: Vec<&str> = t.stages().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
    }

    #[test]
    fn merge_sums_stages() {
        let mut a = StageTimer::new();
        a.record("x", Duration::from_millis(10));
        let mut b = StageTimer::new();
        b.record("x", Duration::from_millis(5));
        b.record("y", Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.duration("x"), Duration::from_millis(15));
        assert_eq!(a.duration("y"), Duration::from_millis(2));
    }

    #[test]
    fn render_contains_totals() {
        let mut t = StageTimer::new();
        t.record("stage one", Duration::from_millis(1500));
        let text = t.render();
        assert!(text.contains("stage one: 1.500s"));
        assert!(text.contains("total: 1.500s"));
    }
}
