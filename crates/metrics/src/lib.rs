//! # htc-metrics
//!
//! Evaluation metrics and instrumentation for the HTC reproduction:
//!
//! * [`alignment`] — `precision@q` (Eq. 16) and `MRR` (Eq. 17) plus a
//!   convenience [`AlignmentReport`] bundling both;
//! * [`timing`] — a stage timer used to produce the runtime decomposition of
//!   Fig. 8 and the runtime comparison of Fig. 7, plus the lock-free
//!   [`Counter`]/[`Gauge`] primitives serving runtimes expose via `/stats`;
//! * [`memory`] — zero-dependency peak-RSS introspection (`/proc/self/status`
//!   `VmHWM`) backing the `Large` tier's memory budget.

pub mod alignment;
pub mod memory;
pub mod timing;

pub use alignment::{mrr, precision_at_q, AlignmentReport};
pub use memory::{current_rss_bytes, peak_rss_bytes};
pub use timing::{Counter, Gauge, StageTimer};
