//! # htc-metrics
//!
//! Evaluation metrics and instrumentation for the HTC reproduction:
//!
//! * [`alignment`] — `precision@q` (Eq. 16) and `MRR` (Eq. 17) plus a
//!   convenience [`AlignmentReport`] bundling both;
//! * [`timing`] — a stage timer used to produce the runtime decomposition of
//!   Fig. 8 and the runtime comparison of Fig. 7, plus the lock-free
//!   [`Counter`]/[`Gauge`] primitives serving runtimes expose via `/stats`.

pub mod alignment;
pub mod timing;

pub use alignment::{mrr, precision_at_q, AlignmentReport};
pub use timing::{Counter, Gauge, StageTimer};
