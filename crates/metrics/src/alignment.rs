//! Alignment quality metrics.
//!
//! Both metrics consume an alignment matrix `M ∈ R^{n_s × n_t}` (row `i` holds
//! the alignment scores of source node `i` against every target node) and the
//! ground-truth anchor links:
//!
//! * `precision@q` (Eq. 16) — the fraction of ground-truth anchors whose true
//!   target appears among the `q` highest-scoring candidates of its row;
//! * `MRR` (Eq. 17) — the mean reciprocal rank of the true target within its
//!   row.

use htc_graph::perturb::GroundTruth;
use htc_linalg::ops::{rank_of, top_k_indices};
use htc_linalg::DenseMatrix;
use std::collections::BTreeMap;

/// Computes `precision@q` of `alignment` against `ground_truth`.
///
/// Anchors whose source or target index falls outside the alignment matrix are
/// counted as misses (this mirrors how partially-covered ground truth is
/// handled in the paper's real-world datasets).  Returns 0 when there are no
/// anchors.
pub fn precision_at_q(alignment: &DenseMatrix, ground_truth: &GroundTruth, q: usize) -> f64 {
    let anchors: Vec<(usize, usize)> = ground_truth.anchors().collect();
    if anchors.is_empty() || q == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    for &(s, t) in &anchors {
        if s >= alignment.rows() || t >= alignment.cols() {
            continue;
        }
        let row = alignment.row(s);
        if top_k_indices(row, q).contains(&t) {
            hits += 1;
        }
    }
    hits as f64 / anchors.len() as f64
}

/// Computes the mean reciprocal rank of the true anchors.
pub fn mrr(alignment: &DenseMatrix, ground_truth: &GroundTruth) -> f64 {
    let anchors: Vec<(usize, usize)> = ground_truth.anchors().collect();
    if anchors.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for &(s, t) in &anchors {
        if s >= alignment.rows() || t >= alignment.cols() {
            continue;
        }
        let rank = rank_of(alignment.row(s), t);
        total += 1.0 / rank as f64;
    }
    total / anchors.len() as f64
}

/// A bundle of precision@q values (for several q) plus MRR.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentReport {
    precisions: BTreeMap<usize, f64>,
    mrr: f64,
    num_anchors: usize,
}

impl AlignmentReport {
    /// Evaluates an alignment matrix at the requested `q` values.
    pub fn evaluate(alignment: &DenseMatrix, ground_truth: &GroundTruth, qs: &[usize]) -> Self {
        let precisions = qs
            .iter()
            .map(|&q| (q, precision_at_q(alignment, ground_truth, q)))
            .collect();
        Self {
            precisions,
            mrr: mrr(alignment, ground_truth),
            num_anchors: ground_truth.num_anchors(),
        }
    }

    /// The precision at a specific `q`, if it was requested.
    pub fn precision(&self, q: usize) -> Option<f64> {
        self.precisions.get(&q).copied()
    }

    /// All requested `(q, precision)` pairs in ascending order of `q`.
    pub fn precisions(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.precisions.iter().map(|(&q, &p)| (q, p))
    }

    /// The mean reciprocal rank.
    pub fn mrr(&self) -> f64 {
        self.mrr
    }

    /// Number of ground-truth anchors the report was computed over.
    pub fn num_anchors(&self) -> usize {
        self.num_anchors
    }
}

impl std::fmt::Display for AlignmentReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (q, p) in &self.precisions {
            write!(f, "p@{q}={p:.4} ")?;
        }
        write!(f, "MRR={:.4} (anchors={})", self.mrr, self.num_anchors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn identity_gt(n: usize) -> GroundTruth {
        GroundTruth::identity(n)
    }

    #[test]
    fn perfect_alignment_scores_one() {
        let m = DenseMatrix::identity(5);
        let gt = identity_gt(5);
        assert_eq!(precision_at_q(&m, &gt, 1), 1.0);
        assert_eq!(precision_at_q(&m, &gt, 10), 1.0);
        assert_eq!(mrr(&m, &gt), 1.0);
    }

    #[test]
    fn worst_alignment_scores_near_zero() {
        // Scores that rank the true anchor last.
        let mut m = DenseMatrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                m.set(i, j, if i == j { -1.0 } else { 1.0 });
            }
        }
        let gt = identity_gt(3);
        assert_eq!(precision_at_q(&m, &gt, 1), 0.0);
        assert_eq!(precision_at_q(&m, &gt, 3), 1.0);
        assert!((mrr(&m, &gt) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn partial_ground_truth_is_supported() {
        let m = DenseMatrix::identity(4);
        let gt = GroundTruth::new(vec![Some(0), None, Some(2), None]);
        assert_eq!(precision_at_q(&m, &gt, 1), 1.0);
        assert_eq!(gt.num_anchors(), 2);
    }

    #[test]
    fn out_of_range_anchor_counts_as_miss() {
        let m = DenseMatrix::identity(3);
        let gt = GroundTruth::new(vec![Some(0), Some(1), Some(7)]);
        assert!((precision_at_q(&m, &gt, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((mrr(&m, &gt) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ground_truth_returns_zero() {
        let m = DenseMatrix::identity(3);
        let gt = GroundTruth::new(vec![None, None, None]);
        assert_eq!(precision_at_q(&m, &gt, 1), 0.0);
        assert_eq!(mrr(&m, &gt), 0.0);
    }

    #[test]
    fn mrr_uses_reciprocal_rank() {
        // True anchor ranked 2nd for source 0, 1st for source 1.
        let m = DenseMatrix::from_vec(2, 2, vec![0.4, 0.6, 0.1, 0.9]).unwrap();
        let gt = identity_gt(2);
        assert!((mrr(&m, &gt) - (0.5 + 1.0) / 2.0).abs() < 1e-12);
        assert_eq!(precision_at_q(&m, &gt, 1), 0.5);
    }

    #[test]
    fn report_collects_everything() {
        let m = DenseMatrix::identity(4);
        let gt = identity_gt(4);
        let report = AlignmentReport::evaluate(&m, &gt, &[1, 5]);
        assert_eq!(report.precision(1), Some(1.0));
        assert_eq!(report.precision(5), Some(1.0));
        assert_eq!(report.precision(3), None);
        assert_eq!(report.mrr(), 1.0);
        assert_eq!(report.num_anchors(), 4);
        assert_eq!(report.precisions().count(), 2);
        let shown = report.to_string();
        assert!(shown.contains("p@1=1.0000"));
        assert!(shown.contains("MRR=1.0000"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Property: precision@q is monotone in q and bounded by [0, 1];
        /// MRR never exceeds precision@large-q and also lies in [0, 1].
        #[test]
        fn metric_bounds(seed in 0u64..1000, n in 2usize..10) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let data: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let m = DenseMatrix::from_vec(n, n, data).unwrap();
            let gt = GroundTruth::identity(n);
            let p1 = precision_at_q(&m, &gt, 1);
            let p3 = precision_at_q(&m, &gt, 3.min(n));
            let pn = precision_at_q(&m, &gt, n);
            let r = mrr(&m, &gt);
            prop_assert!((0.0..=1.0).contains(&p1));
            prop_assert!(p1 <= p3 + 1e-12);
            prop_assert!(p3 <= pn + 1e-12);
            prop_assert!((pn - 1.0).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!(p1 <= r + 1e-12, "p@1 {p1} should not exceed MRR {r}");
        }
    }
}
