//! Process-memory introspection with zero dependencies.
//!
//! The `Large` scale tier exists to bound peak resident memory, so the
//! benchmark harness and the serving runtime need to *observe* peak RSS
//! without pulling in a crate.  On Linux the kernel already tracks the
//! high-water mark per process: `/proc/self/status` carries `VmHWM` (peak
//! resident set) and `VmRSS` (current resident set) in kB.  This module is a
//! self-read of that file — no syscalls beyond `open`/`read`, no caching, and
//! graceful `None` on platforms without procfs so callers can skip the figure
//! instead of failing.
//!
//! `VmHWM` is monotone for the lifetime of the process, which makes it the
//! right primitive for "peak RSS at end of stage" attribution: sampling it
//! after each pipeline stage yields a non-decreasing series whose first jump
//! identifies the stage where memory peaked.

/// Peak resident set size (high-water mark) of the current process in bytes,
/// or `None` when `/proc/self/status` is unavailable or unparsable.
pub fn peak_rss_bytes() -> Option<u64> {
    read_status_field("VmHWM:")
}

/// Current resident set size of the current process in bytes, or `None` when
/// `/proc/self/status` is unavailable or unparsable.
pub fn current_rss_bytes() -> Option<u64> {
    read_status_field("VmRSS:")
}

fn read_status_field(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_field(&status, key)
}

/// Extracts a `<key>  <value> kB` line from `/proc/self/status` content and
/// returns the value in bytes.  Split out from the procfs read so the parser
/// is testable on any platform.
fn parse_status_field(status: &str, key: &str) -> Option<u64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let kb: u64 = rest.split_whitespace().next()?.parse().ok()?;
            return kb.checked_mul(1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = "Name:\tbench_pipeline\n\
                           VmPeak:\t  204800 kB\n\
                           VmHWM:\t   51200 kB\n\
                           VmRSS:\t   40960 kB\n\
                           Threads:\t4\n";

    #[test]
    fn parses_fields_in_bytes() {
        assert_eq!(parse_status_field(FIXTURE, "VmHWM:"), Some(51200 * 1024));
        assert_eq!(parse_status_field(FIXTURE, "VmRSS:"), Some(40960 * 1024));
        assert_eq!(parse_status_field(FIXTURE, "VmSwap:"), None);
    }

    #[test]
    fn rejects_garbage_values() {
        assert_eq!(
            parse_status_field("VmHWM:\tnot-a-number kB\n", "VmHWM:"),
            None
        );
        assert_eq!(parse_status_field("VmHWM:\n", "VmHWM:"), None);
        assert_eq!(parse_status_field("", "VmHWM:"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn live_readings_are_sane() {
        assert!(peak_rss_bytes().expect("procfs available on linux") > 0);
        assert!(current_rss_bytes().expect("procfs available on linux") > 0);
        // Compare the two from one snapshot: separate procfs reads race with
        // allocations from concurrently running tests.
        let status = std::fs::read_to_string("/proc/self/status").unwrap();
        let peak = parse_status_field(&status, "VmHWM:").unwrap();
        let current = parse_status_field(&status, "VmRSS:").unwrap();
        assert!(peak >= current);
    }
}
