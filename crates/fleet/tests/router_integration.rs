//! In-process fleet tests: a real [`Router`] over real [`htc_serve::Server`]
//! upstreams (no child processes — the process-level supervisor drills live
//! in the workspace root's `tests/fleet_process.rs`, which owns the
//! binaries).
//!
//! Covered here: fingerprint→shard stickiness, failover serving warm and
//! bit-identically from the shared spill directory after the owner dies,
//! `/stats` aggregation summing to the per-shard values, chunked-response
//! relay, and a full drain.

use htc_datasets::{generate_pair, SyntheticPairConfig};
use htc_fleet::{owner, Router, RouterConfig, ShardSet};
use htc_serve::http::Client;
use htc_serve::json::{self, network_spec, Json};
use htc_serve::{routing_fingerprint, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("htc-fleet-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_shard(shard_id: usize, cache_dir: &std::path::Path) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: Some(cache_dir.to_path_buf()),
        shard_id: Some(shard_id),
        workers: 2,
        batch_window: Duration::ZERO,
        ..ServerConfig::default()
    })
    .expect("start shard server")
}

/// A shard table over in-process servers, populated the way a supervisor
/// would.
fn shard_set(servers: &[&Server]) -> Arc<ShardSet> {
    let set = Arc::new(ShardSet::new(servers.len()));
    for (i, server) in servers.iter().enumerate() {
        set.incarnate(i, server.addr(), None);
    }
    set
}

fn align_body(seed: u64) -> String {
    let pair = generate_pair(&SyntheticPairConfig::tiny(8).with_seed(seed));
    format!(
        "{{\"preset\":\"fast\",\"epochs\":2,\"source\":{},\"target\":{}}}",
        network_spec(&pair.source),
        network_spec(&pair.target)
    )
}

/// The deterministic payload of an align response: everything except the
/// timing-carrying `stages` block and the cache provenance flag (a failover
/// replay is a warm start, so `cache_hit` legitimately differs).
fn result_payload(body: &str) -> Vec<(String, Json)> {
    let root = json::parse(body).expect("align response parses");
    [
        "anchors",
        "orbit_importance",
        "trusted_counts",
        "loss_final",
    ]
    .iter()
    .map(|key| {
        (
            key.to_string(),
            root.get(key).cloned().unwrap_or(Json::Null),
        )
    })
    .collect()
}

#[test]
fn requests_stick_to_their_rendezvous_shard() {
    let cache = tmp_dir("stickiness");
    let shards: Vec<Server> = (0..3).map(|i| start_shard(i, &cache)).collect();
    let refs: Vec<&Server> = shards.iter().collect();
    let set = shard_set(&refs);
    let router = Router::start(RouterConfig::default(), Arc::clone(&set)).unwrap();

    let mut client = Client::connect(router.addr()).unwrap();
    for seed in 50..56u64 {
        let body = align_body(seed);
        let expected = owner(routing_fingerprint(body.as_bytes()).unwrap(), 3);
        let mut seen = Vec::new();
        for _ in 0..3 {
            let response = client.request("POST", "/align", &body).expect("align");
            assert_eq!(response.status, 200, "{}", response.body_str());
            let shard: usize = response
                .header("x-htc-shard")
                .expect("router tags responses with the serving shard")
                .parse()
                .unwrap();
            seen.push(shard);
        }
        assert!(
            seen.iter().all(|&s| s == expected),
            "seed {seed} visited shards {seen:?}, expected all on {expected}"
        );
    }

    // With several distinct sources the rendezvous hash should not map
    // everything onto one shard.
    let distinct: std::collections::BTreeSet<usize> = (50..56u64)
        .map(|seed| owner(routing_fingerprint(align_body(seed).as_bytes()).unwrap(), 3))
        .collect();
    assert!(distinct.len() >= 2, "6 sources all landed on one shard");

    router.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn failover_serves_warm_and_bit_identical_from_shared_spill() {
    let cache = tmp_dir("failover");
    let shard0 = start_shard(0, &cache);
    let shard1 = start_shard(1, &cache);
    let set = shard_set(&[&shard0, &shard1]);
    let router = Router::start(RouterConfig::default(), Arc::clone(&set)).unwrap();
    // Option-wrapped so either one can be shut down first (owner-dependent).
    let mut servers = [Some(shard0), Some(shard1)];

    // Owner-agnostic: read the assignment off the hash instead of assuming
    // which of the two shards gets this source.
    let body = align_body(60);
    let owner_id = owner(routing_fingerprint(body.as_bytes()).unwrap(), 2);

    let mut client = Client::connect(router.addr()).unwrap();
    let before = client.request("POST", "/align", &body).expect("align");
    assert_eq!(before.status, 200, "{}", before.body_str());
    assert_eq!(
        before.header("x-htc-shard").unwrap(),
        owner_id.to_string(),
        "first request must land on the rendezvous owner"
    );
    let payload_before = result_payload(before.body_str());

    // Kill the owner (in-process: drain it). Its artifacts are already
    // spilled into the shared cache dir — that happens on the request path.
    let survivor = 1 - owner_id;
    servers[owner_id].take().unwrap().shutdown();
    set.mark_down(owner_id);

    // Same request again: the router must fail over to the survivor, which
    // warm-starts the source from the dead owner's spill, bit-identically.
    let after = client
        .request("POST", "/align", &body)
        .expect("failover align");
    assert_eq!(after.status, 200, "{}", after.body_str());
    assert_eq!(
        after.header("x-htc-shard").unwrap(),
        survivor.to_string(),
        "failover must route to the surviving shard"
    );
    let root = json::parse(after.body_str()).unwrap();
    assert_eq!(
        root.get("cache_hit"),
        Some(&Json::Bool(true)),
        "survivor must warm-start from the shared spill, not retrain cold"
    );
    assert_eq!(
        result_payload(after.body_str()),
        payload_before,
        "failover answer must be bit-identical to the dead owner's"
    );
    // The handler bumps the counter after flushing the response, so the
    // client can observe the body a beat before the increment lands.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while router.metrics().failovers.get() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(router.metrics().failovers.get() >= 1);

    // The fleet health view reflects the degradation.
    let health = client.request("GET", "/fleet/healthz", "").unwrap();
    let health = json::parse(health.body_str()).unwrap();
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("degraded")
    );

    router.shutdown();
    servers[survivor].take().unwrap().shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn stats_aggregation_sums_match_per_shard_values() {
    let cache = tmp_dir("stats");
    let shards: Vec<Server> = (0..2).map(|i| start_shard(i, &cache)).collect();
    let refs: Vec<&Server> = shards.iter().collect();
    let set = shard_set(&refs);
    let router = Router::start(RouterConfig::default(), Arc::clone(&set)).unwrap();

    let mut client = Client::connect(router.addr()).unwrap();
    for seed in 70..74u64 {
        let body = align_body(seed);
        let response = client.request("POST", "/align", &body).expect("align");
        assert_eq!(response.status, 200, "{}", response.body_str());
    }

    // Per-shard truth, fetched directly from each shard.
    let mut direct_align_ok = 0.0;
    let mut direct_hits = 0.0;
    for shard in &refs {
        let mut direct = Client::connect(shard.addr()).unwrap();
        let stats = direct.request("GET", "/stats", "").unwrap();
        let stats = json::parse(stats.body_str()).unwrap();
        let num = |path: &[&str]| {
            path.iter()
                .try_fold(&stats, |v, k| v.get(k))
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        };
        direct_align_ok += num(&["requests", "align_ok"]);
        direct_hits += num(&["cache", "hits"]);
    }
    assert_eq!(direct_align_ok, 4.0, "four aligns served fleet-wide");

    let aggregated = client.request("GET", "/stats", "").unwrap();
    let aggregated = json::parse(aggregated.body_str()).unwrap();
    let total = |path: &[&str]| {
        path.iter()
            .try_fold(&aggregated, |v, k| v.get(k))
            .and_then(Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert_eq!(total(&["totals", "requests", "align_ok"]), direct_align_ok);
    assert_eq!(total(&["totals", "cache", "hits"]), direct_hits);
    assert_eq!(total(&["fleet", "shards"]), 2.0);
    assert_eq!(total(&["fleet", "healthy"]), 2.0);
    assert_eq!(total(&["router", "proxied_ok"]), 4.0);
    assert_eq!(total(&["router", "bad_gateway"]), 0.0);
    // The per-shard raw snapshots ride along for drill-down.
    let members = aggregated.get("shards").and_then(Json::as_arr).unwrap();
    assert_eq!(members.len(), 2);

    router.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn chunked_upstream_responses_relay_transparently() {
    let cache = tmp_dir("chunked");
    // stream_threshold 1: every align response streams out chunked, so the
    // relay's chunk-by-chunk re-framing is what the client exercises.
    let shard = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: Some(cache.clone()),
        shard_id: Some(0),
        workers: 2,
        batch_window: Duration::ZERO,
        stream_threshold: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let set = shard_set(&[&shard]);
    let router = Router::start(RouterConfig::default(), Arc::clone(&set)).unwrap();

    let body = align_body(80);
    // Direct answer (also chunked) vs the relayed one must be bit-identical.
    let mut direct = Client::connect(shard.addr()).unwrap();
    let expected = direct.request("POST", "/align", &body).unwrap();
    assert_eq!(expected.status, 200, "{}", expected.body_str());

    let mut client = Client::connect(router.addr()).unwrap();
    let relayed = client.request("POST", "/align", &body).unwrap();
    assert_eq!(relayed.status, 200, "{}", relayed.body_str());
    assert_eq!(
        relayed.header("transfer-encoding"),
        Some("chunked"),
        "the relay must preserve the streaming framing"
    );
    assert_eq!(
        result_payload(relayed.body_str()),
        result_payload(expected.body_str())
    );
    // A second exchange on the same client connection proves the relayed
    // framing left the keep-alive byte stream aligned.
    let again = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(again.status, 200);

    router.shutdown();
    shard.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn unroutable_bodies_are_forwarded_not_dropped() {
    let cache = tmp_dir("unroutable");
    let shard = start_shard(0, &cache);
    let set = shard_set(&[&shard]);
    let router = Router::start(RouterConfig::default(), Arc::clone(&set)).unwrap();

    let mut client = Client::connect(router.addr()).unwrap();
    let response = client
        .request("POST", "/align", "{\"not\":\"an align request\"}")
        .unwrap();
    // The shard owns the rejection; the router just relays it.
    assert_eq!(response.status, 400, "{}", response.body_str());
    assert!(response.header("x-htc-shard").is_some());
    assert_eq!(router.metrics().unroutable.get(), 1);

    router.shutdown();
    shard.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn fleet_drain_stops_router_and_releases_clients() {
    let cache = tmp_dir("drain");
    let shard = start_shard(0, &cache);
    let set = shard_set(&[&shard]);
    let router = Router::start(RouterConfig::default(), Arc::clone(&set)).unwrap();
    let addr = router.addr();

    let mut client = Client::connect(addr).unwrap();
    let ack = client.request("POST", "/shutdown", "").unwrap();
    assert_eq!(ack.status, 200);
    // join returns only after the acceptor stopped and every worker joined;
    // a fresh connect must now be refused or immediately closed.
    router.join();
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.request("GET", "/healthz", "").is_err(),
    };
    assert!(refused, "router still serving after drain");

    shard.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}
