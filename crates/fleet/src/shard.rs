//! The live shard table: the one piece of state the supervisor and the
//! router share.
//!
//! The supervisor writes into it (addresses as children come up, health and
//! load from `/healthz` probes, generation bumps on restart); the router
//! reads snapshots to pick proxy targets and marks shards down the moment a
//! connect fails — passive health feedback that is faster than the next
//! probe tick.

use std::net::SocketAddr;
use std::sync::Mutex;

/// One shard's routing-relevant state.  `generation` increments on every
/// (re)spawn; pooled upstream connections are tagged with it so connections
/// into a dead incarnation are discarded instead of reused.
#[derive(Debug, Clone)]
pub struct ShardState {
    pub addr: Option<SocketAddr>,
    pub healthy: bool,
    pub generation: u64,
    /// Load snapshot from the last `/healthz` probe — the failover tiebreak.
    pub pressure_level: u8,
    pub active: u64,
    pub queued: u64,
    /// Times the supervisor respawned this shard after a crash.
    pub restarts: u64,
    /// OS pid of the current incarnation (`None` between incarnations).
    pub pid: Option<u32>,
}

impl ShardState {
    fn new() -> Self {
        Self {
            addr: None,
            healthy: false,
            generation: 0,
            pressure_level: 0,
            active: 0,
            queued: 0,
            restarts: 0,
            pid: None,
        }
    }

    /// The failover sort key among healthy candidates: pressure rung first,
    /// then raw occupancy.
    pub fn load_key(&self) -> (u8, u64) {
        (self.pressure_level, self.active + self.queued)
    }
}

/// A fixed-size table of [`ShardState`]s behind one lock.  Shard *ids* are
/// stable for the fleet's lifetime (they are what rendezvous hashing maps
/// onto); only the state behind an id changes.
#[derive(Debug)]
pub struct ShardSet {
    shards: Mutex<Vec<ShardState>>,
}

impl ShardSet {
    pub fn new(n_shards: usize) -> Self {
        Self {
            shards: Mutex::new((0..n_shards.max(1)).map(|_| ShardState::new()).collect()),
        }
    }

    pub fn len(&self) -> usize {
        self.shards.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn snapshot(&self, shard: usize) -> ShardState {
        self.shards.lock().unwrap()[shard].clone()
    }

    pub fn snapshot_all(&self) -> Vec<ShardState> {
        self.shards.lock().unwrap().clone()
    }

    /// A new incarnation came up: record its address and pid, bump the
    /// generation (invalidating pooled connections into the old one), and
    /// mark it healthy.  Returns the new generation.
    pub fn incarnate(&self, shard: usize, addr: SocketAddr, pid: Option<u32>) -> u64 {
        let mut shards = self.shards.lock().unwrap();
        let s = &mut shards[shard];
        s.addr = Some(addr);
        s.pid = pid;
        s.generation += 1;
        s.healthy = true;
        s.pressure_level = 0;
        s.active = 0;
        s.queued = 0;
        s.generation
    }

    /// Probe result: the shard answered `/healthz` with this load snapshot.
    pub fn record_health(&self, shard: usize, pressure_level: u8, active: u64, queued: u64) {
        let mut shards = self.shards.lock().unwrap();
        let s = &mut shards[shard];
        s.healthy = true;
        s.pressure_level = pressure_level;
        s.active = active;
        s.queued = queued;
    }

    /// The shard stopped answering (probe failures, connect refusal, or an
    /// observed process exit).  Routing skips it until the supervisor sees
    /// it healthy again.
    pub fn mark_down(&self, shard: usize) {
        let mut shards = self.shards.lock().unwrap();
        shards[shard].healthy = false;
    }

    /// The process exited: down, pid gone, restart counted.
    pub fn record_exit(&self, shard: usize) {
        let mut shards = self.shards.lock().unwrap();
        let s = &mut shards[shard];
        s.healthy = false;
        s.pid = None;
        s.restarts += 1;
    }

    pub fn healthy_count(&self) -> usize {
        self.shards
            .lock()
            .unwrap()
            .iter()
            .filter(|s| s.healthy)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incarnation_bumps_generation_and_resets_load() {
        let set = ShardSet::new(2);
        let addr: SocketAddr = "127.0.0.1:9000".parse().unwrap();
        assert_eq!(set.incarnate(0, addr, Some(41)), 1);
        set.record_health(0, 2, 7, 3);
        assert_eq!(set.snapshot(0).load_key(), (2, 10));
        set.record_exit(0);
        let down = set.snapshot(0);
        assert!(!down.healthy);
        assert_eq!(down.restarts, 1);
        assert_eq!(set.incarnate(0, addr, Some(42)), 2);
        let up = set.snapshot(0);
        assert!(up.healthy);
        assert_eq!(up.load_key(), (0, 0));
        assert_eq!(set.healthy_count(), 1);
    }
}
