//! The shard supervisor: spawns N `htc-serve` processes and keeps them
//! alive.
//!
//! One monitor thread per shard owns its [`Child`] end to end: spawn with
//! `--addr 127.0.0.1:0` (the OS picks a port — a crashed shard's old port
//! may linger in TIME_WAIT, so fixed ports would make restarts racy), scrape
//! the `listening on <addr>` line off the child's stdout, publish the
//! address into the shared [`ShardSet`] under a bumped generation, then
//! alternate between crash detection (`try_wait`) and `/healthz` probes.  A
//! crash is restarted with exponential backoff (reset after a stretch of
//! healthy uptime); the supervisor never gives up on a shard.
//!
//! Shutdown is the inverse, deterministic: each monitor sends its child
//! `SIGTERM` (the shard drains exactly like `POST /shutdown` — see
//! `htc_serve::signal`), waits bounded, escalates to `SIGKILL`, and
//! [`Supervisor::shutdown`] joins every monitor — no orphan processes.

use crate::shard::ShardSet;
use htc_serve::http::Client;
use htc_serve::json;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a [`Supervisor`] runs its shards.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Path to the `htc-serve` binary.
    pub serve_bin: PathBuf,
    /// Number of shard processes.
    pub shards: usize,
    /// The **shared** durable artifact directory every shard spills into and
    /// warm-starts from — the fleet's replication layer: artifacts are
    /// fingerprint-named and bit-identical, so any shard can serve any other
    /// shard's sources warm after a failover or restart.
    pub cache_dir: PathBuf,
    /// Extra arguments appended to every shard's command line
    /// (e.g. `--preset`, `--workers`).
    pub shard_args: Vec<String>,
    /// Pause between crash checks / health probes per shard.
    pub health_interval: Duration,
    /// Initial restart backoff after a crash; doubles per consecutive crash
    /// up to 3 s, resets after 5 s of uptime.
    pub restart_backoff: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            serve_bin: PathBuf::from("htc-serve"),
            shards: 2,
            cache_dir: std::env::temp_dir().join("htc-fleet-cache"),
            shard_args: Vec::new(),
            health_interval: Duration::from_millis(200),
            restart_backoff: Duration::from_millis(100),
        }
    }
}

/// A running fleet of supervised shard processes.
pub struct Supervisor {
    shards: Arc<ShardSet>,
    stop: Arc<AtomicBool>,
    monitors: Vec<std::thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Spawns one monitor thread per shard; each brings its process up and
    /// keeps it up.  Use [`wait_all_listening`](Self::wait_all_listening)
    /// before routing traffic.
    pub fn start(config: SupervisorConfig) -> std::io::Result<Supervisor> {
        std::fs::create_dir_all(&config.cache_dir)?;
        let shards = Arc::new(ShardSet::new(config.shards));
        let stop = Arc::new(AtomicBool::new(false));
        let mut monitors = Vec::with_capacity(config.shards);
        for i in 0..config.shards.max(1) {
            let config = config.clone();
            let shards = Arc::clone(&shards);
            let stop = Arc::clone(&stop);
            monitors.push(
                std::thread::Builder::new()
                    .name(format!("htc-fleet-monitor-{i}"))
                    .spawn(move || monitor_shard(i, &config, &shards, &stop))?,
            );
        }
        Ok(Supervisor {
            shards,
            stop,
            monitors,
        })
    }

    /// The shared shard table (hand it to the router).
    pub fn shards(&self) -> Arc<ShardSet> {
        Arc::clone(&self.shards)
    }

    /// Blocks until every shard has published an address and probed healthy,
    /// or the timeout passes.  Returns whether the fleet is fully up.
    pub fn wait_all_listening(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let all_up = self
                .shards
                .snapshot_all()
                .iter()
                .all(|s| s.addr.is_some() && s.healthy);
            if all_up {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stops every shard (SIGTERM drain, bounded wait, SIGKILL escalation)
    /// and joins every monitor thread.  When this returns, no child process
    /// of the fleet is left running.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        for monitor in self.monitors {
            let _ = monitor.join();
        }
    }
}

/// Sleeps in small slices so a shutdown request interrupts the wait.
/// Returns `true` when stop was requested.
fn sleep_interruptible(stop: &AtomicBool, total: Duration) -> bool {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if stop.load(Ordering::SeqCst) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.load(Ordering::SeqCst)
}

fn monitor_shard(shard: usize, config: &SupervisorConfig, shards: &ShardSet, stop: &AtomicBool) {
    let max_backoff = Duration::from_secs(3);
    let mut backoff = config.restart_backoff.max(Duration::from_millis(10));
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let (mut child, addr) = match spawn_shard(shard, config) {
            Ok(spawned) => spawned,
            Err(e) => {
                eprintln!("htc-fleet: spawning shard {shard} failed: {e}");
                if sleep_interruptible(stop, backoff) {
                    return;
                }
                backoff = (backoff * 2).min(max_backoff);
                continue;
            }
        };
        let pid = child.id();
        shards.incarnate(shard, addr, Some(pid));
        // Machine-scrapable (CI kills shards by these pids).
        println!("shard {shard} pid {pid} listening on {addr}");
        let up_since = Instant::now();
        let mut probe_failures = 0u32;
        loop {
            if sleep_interruptible(stop, config.health_interval) {
                terminate_child(child, shard);
                shards.mark_down(shard);
                return;
            }
            if let Ok(Some(status)) = child.try_wait() {
                shards.record_exit(shard);
                eprintln!("htc-fleet: shard {shard} (pid {pid}) exited ({status}); restarting");
                break;
            }
            match probe_health(addr) {
                Ok((pressure, active, queued)) => {
                    probe_failures = 0;
                    shards.record_health(shard, pressure, active, queued);
                }
                Err(_) => {
                    probe_failures += 1;
                    // One failed probe can be a full accept queue; two in a
                    // row means stop routing here until it answers again.
                    if probe_failures >= 2 {
                        shards.mark_down(shard);
                    }
                }
            }
        }
        if up_since.elapsed() >= Duration::from_secs(5) {
            backoff = config.restart_backoff.max(Duration::from_millis(10));
        }
        if sleep_interruptible(stop, backoff) {
            return;
        }
        backoff = (backoff * 2).min(max_backoff);
    }
}

/// Spawns one shard process and scrapes its bound address off stdout.
fn spawn_shard(shard: usize, config: &SupervisorConfig) -> std::io::Result<(Child, SocketAddr)> {
    let mut child = Command::new(&config.serve_bin)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--shard-id")
        .arg(shard.to_string())
        .arg("--cache-dir")
        .arg(&config.cache_dir)
        .args(&config.shard_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| std::io::Error::other("child stdout was not piped"))?;
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::other(
                "shard exited before printing its address",
            ));
        }
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            match rest.parse::<SocketAddr>() {
                Ok(addr) => break addr,
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(std::io::Error::other(format!(
                        "shard printed unparseable address {rest:?}: {e}"
                    )));
                }
            }
        }
    };
    // Keep draining the pipe for the child's lifetime: dropping the read end
    // would SIGPIPE the shard if it ever printed to stdout again.
    std::thread::Builder::new()
        .name(format!("htc-fleet-stdout-{shard}"))
        .spawn(move || {
            let mut sink = String::new();
            loop {
                sink.clear();
                match reader.read_line(&mut sink) {
                    Ok(0) | Err(_) => return,
                    Ok(_) => {}
                }
            }
        })?;
    Ok((child, addr))
}

/// One `/healthz` probe; returns `(pressure_level, active, queued)`.
fn probe_health(addr: SocketAddr) -> Result<(u8, u64, u64), String> {
    let mut client =
        Client::connect_timeout(addr, Duration::from_millis(250)).map_err(|e| e.to_string())?;
    client.set_response_deadline(Duration::from_secs(2));
    let response = client.request("GET", "/healthz", "")?;
    if response.status != 200 {
        return Err(format!("healthz answered {}", response.status));
    }
    let text = std::str::from_utf8(&response.body).map_err(|_| "healthz body not UTF-8")?;
    let root = json::parse(text).map_err(|e| format!("healthz body: {e}"))?;
    let field = |name: &str| root.get(name).and_then(json::Json::as_f64).unwrap_or(0.0);
    Ok((
        field("pressure_level") as u8,
        field("active") as u64,
        field("queued") as u64,
    ))
}

#[cfg(unix)]
fn send_signal(pid: u32, sig: i32) {
    extern "C" {
        /// POSIX `kill(2)`.
        fn kill(pid: i32, sig: i32) -> i32;
    }
    // SAFETY: `kill` is the libc symbol (linked via std); sending a signal to
    // a pid the supervisor spawned has no memory-safety implications.
    unsafe {
        kill(pid as i32, sig);
    }
}

/// Stops one child: graceful `SIGTERM` drain first (the shard finishes
/// in-flight work and joins its pool), `SIGKILL` after a bounded wait.
fn terminate_child(mut child: Child, shard: usize) {
    #[cfg(unix)]
    {
        const SIGTERM: i32 = 15;
        send_signal(child.id(), SIGTERM);
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            match child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(_) => break,
            }
        }
        eprintln!("htc-fleet: shard {shard} ignored SIGTERM; killing");
    }
    #[cfg(not(unix))]
    let _ = shard;
    let _ = child.kill();
    let _ = child.wait();
}
