//! # htc-fleet
//!
//! Horizontal scale-out for `htc-serve`: a process **supervisor** plus a
//! consistent-hash **router**, turning N single-process daemons into one
//! fleet behind one address.
//!
//! ```text
//!                      ┌────────────────────────┐
//!        clients ───►  │  router  (htc-fleet)   │   GET /stats, /fleet/healthz
//!                      │  rendezvous hash on    │   POST /align  → owner shard
//!                      │  source fingerprint    │   POST /shutdown → drain all
//!                      └───┬────────┬───────┬───┘
//!                   pooled │        │       │ keep-alive
//!                      ┌───▼──┐ ┌───▼──┐ ┌──▼───┐
//!                      │shard0│ │shard1│ │shard2│   htc-serve --shard-id i
//!                      └───┬──┘ └───┬──┘ └──┬───┘   (supervised, restarted
//!                          │        │       │         on crash with backoff)
//!                          └────────▼───────┘
//!                        shared --cache-dir spill
//!              (fingerprint-named, bit-identical artifacts:
//!               any shard warm-starts any other's sources)
//! ```
//!
//! The design leans on two earlier invariants:
//!
//! * Alignment artifacts are **deterministic and fingerprint-named**, so the
//!   shared `--cache-dir` is a replication layer with no protocol: a shard
//!   that takes over a dead peer's sources warm-starts them bit-identically
//!   from the peer's own spill files.
//! * [`htc_serve::routing_fingerprint`] computes a request's source key
//!   without building a session, so the router stays cheap — parse, hash,
//!   relay.
//!
//! [`hash`] implements rendezvous hashing (deterministic, minimal movement
//! under shard add/remove), [`shard`] the live shard table, [`pool`] the
//! generation-tagged upstream connection pool, [`supervisor`] process
//! spawn/scrape/probe/restart, and [`router`] the proxy front-end with
//! failover and fleet-wide stats aggregation.

pub mod hash;
pub mod pool;
pub mod router;
pub mod shard;
pub mod supervisor;

pub use hash::{owner, preference_order, shard_score};
pub use pool::UpstreamPool;
pub use router::{Router, RouterConfig, RouterMetrics};
pub use shard::{ShardSet, ShardState};
pub use supervisor::{Supervisor, SupervisorConfig};
