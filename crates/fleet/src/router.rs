//! The fleet router: one front-end address over N shard processes.
//!
//! Runs on the same bounded [`ConnectionRuntime`] as a shard, so the router
//! inherits the whole serving posture for free — worker pool, queue-full
//! load shedding, keep-alive, deterministic drain.  Each `POST /align` body
//! is fingerprinted ([`htc_serve::routing_fingerprint`]) and sent to the
//! shard rendezvous hashing assigns it, over a pooled keep-alive upstream
//! connection.  Repeat requests for one source therefore always land on the
//! shard that has that source's session cached — the whole point of
//! sharding a fingerprint-keyed cache.
//!
//! **Failover** is safe exactly until the upstream response head has been
//! read: up to that point nothing was written downstream, so the router can
//! retry the next live shard in the preference order (least-loaded first,
//! by the `/healthz` load snapshots).  The shared `--cache-dir` makes this
//! cheap *and* correct: the fallback shard warm-starts the dead owner's
//! sources from its spilled artifacts, bit-identically.  Once a head has
//! been relayed the router is committed; an upstream failure mid-body
//! closes the client connection (a torn response must not look complete).
//!
//! `/stats` aggregates every live shard's stats (summed totals + per-shard
//! raw snapshots + the router's own counters); `/fleet/healthz` reports the
//! shard table.  `X-HTC-Deadline-Ms` and `X-HTC-Client` are forwarded
//! upstream; `Retry-After` and chunked/streamed bodies come back through
//! [`relay_response`] untouched.

use crate::hash::preference_order;
use crate::pool::UpstreamPool;
use crate::shard::{ShardSet, ShardState};
use htc_metrics::Counter;
use htc_serve::http::{
    read_request_limited, read_response_head, relay_response, write_json_response,
    write_json_response_with, Client, HttpError, ReadLimits, RelayError, Request,
};
use htc_serve::json::{self, Json};
use htc_serve::routing_fingerprint;
use htc_serve::runtime::{
    default_workers, Conn, ConnHandler, ConnectionRuntime, Disposition, RuntimeConfig,
    RuntimeMetrics, ShutdownSignal,
};
use std::io::BufRead;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 for ephemeral (tests).
    pub addr: String,
    /// Worker-pool size; `0` means [`default_workers`].
    pub workers: usize,
    /// Queue capacity before connections are shed with `503`.
    pub queue_capacity: usize,
    /// Idle keep-alive timeout for client connections.
    pub keep_alive: Duration,
    /// TCP connect budget per upstream attempt — how fast "shard is dead"
    /// is discovered on the request path.
    pub connect_timeout: Duration,
    /// Budget for one upstream response (head + body relay).
    pub proxy_deadline: Duration,
    /// Idle upstream connections kept per shard.
    pub max_idle_per_shard: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 128,
            keep_alive: Duration::from_secs(15),
            connect_timeout: Duration::from_millis(250),
            proxy_deadline: Duration::from_secs(60),
            max_idle_per_shard: 8,
        }
    }
}

/// The router's own counters (everything else on `/stats` comes from the
/// shards or the shared [`RuntimeMetrics`]).
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Requests relayed with an upstream response (any status).
    pub proxied_ok: Counter,
    /// Relayed requests that were served by a non-owner shard.
    pub failovers: Counter,
    /// Requests answered `502` because no shard could take them.
    pub bad_gateway: Counter,
    /// Align bodies with no routable source fingerprint (still forwarded —
    /// the shard owns the 400).
    pub unroutable: Counter,
}

struct RouterShared {
    config: RouterConfig,
    shards: Arc<ShardSet>,
    pool: UpstreamPool,
    metrics: Arc<RouterMetrics>,
    runtime_metrics: Arc<RuntimeMetrics>,
    shutdown: Arc<ShutdownSignal>,
    started: Instant,
}

/// A running fleet router.
pub struct Router {
    addr: SocketAddr,
    runtime: ConnectionRuntime,
    shared: Arc<RouterShared>,
}

impl Router {
    /// Binds and starts routing over the given shard table (owned by a
    /// [`crate::Supervisor`], or populated by hand in tests).
    pub fn start(mut config: RouterConfig, shards: Arc<ShardSet>) -> std::io::Result<Router> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        if config.workers == 0 {
            config.workers = default_workers();
        }
        let shutdown = Arc::new(ShutdownSignal::new());
        let runtime_metrics = Arc::new(RuntimeMetrics::default());
        let runtime_config = RuntimeConfig {
            workers: config.workers,
            queue_capacity: config.queue_capacity,
            retry_after_secs: 1,
            idle_timeout: config.keep_alive,
            ..RuntimeConfig::default()
        };
        let pool = UpstreamPool::new(shards.len(), config.max_idle_per_shard);
        let shared = Arc::new(RouterShared {
            pool,
            shards,
            metrics: Arc::new(RouterMetrics::default()),
            runtime_metrics: Arc::clone(&runtime_metrics),
            shutdown: Arc::clone(&shutdown),
            started: Instant::now(),
            config,
        });
        let handler_shared = Arc::clone(&shared);
        let handler: ConnHandler = Arc::new(move |conn| handle_connection(conn, &handler_shared));
        let runtime =
            ConnectionRuntime::start(listener, runtime_config, shutdown, runtime_metrics, handler)?;
        Ok(Router {
            addr,
            runtime,
            shared,
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn metrics(&self) -> Arc<RouterMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// External shutdown trigger (signal handlers).
    pub fn shutdown_signal(&self) -> Arc<ShutdownSignal> {
        Arc::clone(&self.shared.shutdown)
    }

    /// Stops accepting, drains queued connections, joins every worker.
    pub fn shutdown(mut self) {
        self.shared.shutdown.trigger();
        self.runtime.join();
    }

    /// Blocks until the router stops (`POST /shutdown` or a signal).
    pub fn join(mut self) {
        self.runtime.join();
    }
}

/// Serves one request burst on a dispatched client connection (see
/// `htc_serve::server::handle_connection` for the burst contract): the
/// readable request plus anything pipelined behind it, then back to the
/// reactor on `KeepAlive`.
fn handle_connection(conn: &mut Conn, shared: &Arc<RouterShared>) -> Disposition {
    let limits = ReadLimits::default();
    loop {
        if !conn.has_buffered() {
            // First request of the burst, or a clean FIN from a parked peer:
            // peek so a normal hangup is not answered with a 400.
            let reader = conn.reader_mut();
            if reader
                .get_ref()
                .set_read_timeout(Some(limits.stall))
                .is_err()
            {
                return Disposition::Close;
            }
            match reader.fill_buf() {
                Ok([]) | Err(_) => return Disposition::Close,
                Ok(_) => {}
            }
        }
        let request = match read_request_limited(conn.reader_mut(), &limits) {
            Ok(request) => request,
            Err(HttpError { status, message }) => {
                let body = json::obj(vec![
                    ("error", json::str(message)),
                    ("kind", json::str("http")),
                ])
                .render();
                let _ = write_json_response(conn.stream_mut(), status, &body, false);
                return Disposition::Close;
            }
        };
        shared.runtime_metrics.total_requests.inc();
        let keep_alive = request.keep_alive && !shared.shutdown.is_triggered();
        let stream = conn.stream_mut();
        let connection_usable = match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/align") => proxy_align(stream, &request, shared, keep_alive),
            ("GET", "/healthz") => write_json_response(
                stream,
                200,
                &json::obj(vec![
                    ("status", json::str("ok")),
                    ("role", json::str("router")),
                    (
                        "uptime_seconds",
                        json::num(shared.started.elapsed().as_secs_f64()),
                    ),
                ])
                .render(),
                keep_alive,
            )
            .map(|()| true),
            ("GET", "/fleet/healthz") => {
                write_json_response(stream, 200, &fleet_healthz(shared), keep_alive).map(|()| true)
            }
            ("GET", "/stats") => {
                write_json_response(stream, 200, &fleet_stats(shared), keep_alive).map(|()| true)
            }
            ("POST", "/shutdown") => {
                let body = json::obj(vec![("status", json::str("stopping"))]).render();
                let written = write_json_response(stream, 200, &body, false);
                shared.shutdown.trigger();
                let _ = written;
                conn.note_request();
                return Disposition::Close;
            }
            ("POST", _) | ("GET", _) => write_json_response(
                stream,
                404,
                &json::obj(vec![
                    ("error", json::str(format!("no route {}", request.path))),
                    ("kind", json::str("not_found")),
                ])
                .render(),
                keep_alive,
            )
            .map(|()| true),
            (method, _) => write_json_response(
                stream,
                405,
                &json::obj(vec![
                    ("error", json::str(format!("method {method} not allowed"))),
                    ("kind", json::str("method_not_allowed")),
                ])
                .render(),
                keep_alive,
            )
            .map(|()| true),
        };
        conn.note_request();
        match connection_usable {
            Ok(true) if keep_alive => {
                if !conn.has_buffered() {
                    return Disposition::KeepAlive;
                }
            }
            _ => return Disposition::Close,
        }
    }
}

/// One upstream proxy attempt against a specific shard incarnation.
enum Attempt {
    /// Response fully relayed downstream (upstream status irrelevant — the
    /// shard's 4xx/5xx are the client's business).
    Relayed {
        client: Client,
        generation: u64,
        reusable: bool,
    },
    /// Upstream failed before a head was read; nothing was written
    /// downstream, so the request can fail over.
    UpstreamFailed(String),
    /// Upstream died mid-body after the head was relayed: the downstream
    /// response is torn and the connection must close.
    TornMidBody,
    /// The client went away while we were writing to it.
    DownstreamGone(std::io::Error),
}

/// Routes and relays one `POST /align`.  Returns whether the downstream
/// connection is still usable for keep-alive.
fn proxy_align(
    stream: &mut TcpStream,
    request: &Request,
    shared: &Arc<RouterShared>,
    keep_alive: bool,
) -> std::io::Result<bool> {
    let fingerprint = routing_fingerprint(&request.body);
    if fingerprint.is_none() {
        // Forwarded anyway: the owner of "fingerprint 0" will produce the
        // same structured 400/422 any shard would.
        shared.metrics.unroutable.inc();
    }
    let order = preference_order(fingerprint.unwrap_or(0), shared.shards.len());
    let states = shared.shards.snapshot_all();
    let candidates = candidate_order(&order, &states);
    let mut forward: Vec<(&str, &str)> = Vec::new();
    for name in ["x-htc-deadline-ms", "x-htc-client"] {
        if let Some(value) = request.header(name) {
            forward.push((name, value));
        }
    }
    for &shard in &candidates {
        // Fresh snapshot per attempt: the supervisor may have restarted the
        // shard (new addr + generation) since the pre-sort snapshot.
        let state = shared.shards.snapshot(shard);
        let Some(addr) = state.addr else { continue };
        let deadline = Instant::now() + shared.config.proxy_deadline;
        match attempt_proxy(
            shard,
            addr,
            state.generation,
            &request.body,
            &forward,
            stream,
            keep_alive,
            deadline,
            shared,
        ) {
            Attempt::Relayed {
                client,
                generation,
                reusable,
            } => {
                if reusable {
                    let current = shared.shards.snapshot(shard).generation;
                    shared.pool.checkin(shard, client, generation, current);
                }
                shared.metrics.proxied_ok.inc();
                // A failover is any request served off its rendezvous owner
                // — whether the owner failed mid-request (position > 0) or
                // was already marked down and never entered the candidates.
                if shard != order[0] {
                    shared.metrics.failovers.inc();
                }
                return Ok(true);
            }
            Attempt::UpstreamFailed(why) => {
                // Passive health: stop routing here until the supervisor's
                // probe sees the shard answering again.
                eprintln!(
                    "htc-fleet: shard {shard} failed before responding ({why}); failing over"
                );
                shared.shards.mark_down(shard);
                shared.pool.clear(shard);
                continue;
            }
            Attempt::TornMidBody => return Ok(false),
            Attempt::DownstreamGone(e) => return Err(e),
        }
    }
    shared.metrics.bad_gateway.inc();
    let body = json::obj(vec![
        ("error", json::str("no live shard could serve this request")),
        ("kind", json::str("bad_gateway")),
    ])
    .render();
    write_json_response_with(stream, 502, &body, keep_alive, Some(1))?;
    Ok(true)
}

/// The shards to try, in order: the rendezvous owner first (when live), then
/// the remaining live shards least-loaded first (load snapshots from the
/// supervisor's probes; the stable sort keeps rendezvous order among equals).
/// With *no* live shard, every addressed shard is tried in rendezvous order
/// — one may have just come back up between probes.
fn candidate_order(preference: &[usize], states: &[ShardState]) -> Vec<usize> {
    let live = |s: usize| states[s].healthy && states[s].addr.is_some();
    let owner = preference[0];
    let mut candidates: Vec<usize> = Vec::with_capacity(preference.len());
    if live(owner) {
        candidates.push(owner);
    }
    let mut fallbacks: Vec<usize> = preference[1..]
        .iter()
        .copied()
        .filter(|&s| live(s))
        .collect();
    fallbacks.sort_by_key(|&s| states[s].load_key());
    candidates.extend(fallbacks);
    if candidates.is_empty() {
        candidates.extend(
            preference
                .iter()
                .copied()
                .filter(|&s| states[s].addr.is_some()),
        );
    }
    candidates
}

/// One attempt: checkout/connect, forward the request, read the head, relay
/// the body.  A pooled connection that fails before the head is retried once
/// on a fresh socket — the shard may simply have idle-closed it — before the
/// shard itself is declared failed.
#[allow(clippy::too_many_arguments)]
fn attempt_proxy(
    shard: usize,
    addr: SocketAddr,
    generation: u64,
    body: &[u8],
    forward: &[(&str, &str)],
    stream: &mut TcpStream,
    keep_alive: bool,
    deadline: Instant,
    shared: &Arc<RouterShared>,
) -> Attempt {
    let pooled = shared.pool.checkout(shard, generation);
    let had_pooled = pooled.is_some();
    let sources = if had_pooled { 0..2 } else { 1..2 };
    let mut pooled = pooled;
    let mut last_error = String::new();
    for source in sources {
        let mut client = match pooled.take() {
            Some(client) => client,
            None => match Client::connect_timeout(addr, shared.config.connect_timeout) {
                Ok(client) => client,
                Err(e) => return Attempt::UpstreamFailed(format!("connect {addr}: {e}")),
            },
        };
        if let Err(e) = client.send_request_bytes("POST", "/align", body, false, forward) {
            last_error = format!("send: {e}");
            if source == 0 {
                continue;
            }
            return Attempt::UpstreamFailed(last_error);
        }
        let head = match read_response_head(client.reader_mut(), deadline) {
            Ok(head) => head,
            Err(e) => {
                last_error = format!("response head: {e}");
                if source == 0 {
                    continue;
                }
                return Attempt::UpstreamFailed(last_error);
            }
        };
        // Committed: a head exists, so this response — whatever its status
        // — is the one the client gets.
        let shard_tag = [("X-HTC-Shard", shard.to_string())];
        return match relay_response(
            client.reader_mut(),
            &head,
            stream,
            keep_alive,
            &shard_tag,
            deadline,
        ) {
            Ok(()) => {
                let reusable = head
                    .header("connection")
                    .is_none_or(|v| !v.eq_ignore_ascii_case("close"));
                Attempt::Relayed {
                    client,
                    generation,
                    reusable,
                }
            }
            Err(RelayError::Upstream(_)) => Attempt::TornMidBody,
            Err(RelayError::Downstream(e)) => Attempt::DownstreamGone(e),
        };
    }
    Attempt::UpstreamFailed(last_error)
}

/// `GET /fleet/healthz`: the shard table as the router sees it.
fn fleet_healthz(shared: &Arc<RouterShared>) -> String {
    let states = shared.shards.snapshot_all();
    let healthy = states.iter().filter(|s| s.healthy).count();
    let status = if healthy == states.len() {
        "ok"
    } else if healthy > 0 {
        "degraded"
    } else {
        "down"
    };
    let members = states.iter().enumerate().map(|(i, s)| {
        json::obj(vec![
            ("shard", json::num(i as f64)),
            ("healthy", Json::Bool(s.healthy)),
            (
                "addr",
                s.addr.map_or(Json::Null, |a| json::str(a.to_string())),
            ),
            ("generation", json::num(s.generation as f64)),
            ("restarts", json::num(s.restarts as f64)),
            ("pressure_level", json::num(s.pressure_level as f64)),
            ("active", json::num(s.active as f64)),
            ("queued", json::num(s.queued as f64)),
        ])
    });
    json::obj(vec![
        ("status", json::str(status)),
        ("shards", json::num(states.len() as f64)),
        ("healthy", json::num(healthy as f64)),
        ("members", json::arr(members)),
    ])
    .render()
}

/// The per-shard counters summed into the fleet-wide `totals` block; every
/// path is a `(group, field)` of the shard `/stats` schema.
const SUMMED_STATS: &[(&str, &str)] = &[
    ("requests", "total"),
    ("requests", "align_ok"),
    ("requests", "align_err"),
    ("runtime", "total_connections"),
    ("runtime", "total_requests"),
    ("runtime", "shed_connections"),
    ("runtime", "worker_panics"),
    ("runtime", "parked"),
    ("runtime", "reactor_wakeups"),
    ("runtime", "stall_timeouts_closed"),
    ("runtime", "peer_cap_rejections"),
    ("cache", "hits"),
    ("cache", "misses"),
    ("cache", "evictions"),
    ("cache", "spills"),
    ("cache", "reloads"),
    ("cache", "reload_errors"),
    ("batching", "batches"),
    ("batching", "batched_requests"),
    ("robustness", "deadline_expired"),
    ("robustness", "rate_limited"),
    ("robustness", "degraded_responses"),
];

/// `GET /stats`: fetches every live shard's `/stats`, sums the curated
/// counters into `totals`, embeds each shard's raw snapshot, and adds the
/// router's own counters.
fn fleet_stats(shared: &Arc<RouterShared>) -> String {
    let states = shared.shards.snapshot_all();
    let mut sums = vec![0.0f64; SUMMED_STATS.len()];
    let mut members: Vec<Json> = Vec::with_capacity(states.len());
    for (i, state) in states.iter().enumerate() {
        let mut fields = vec![
            ("shard", json::num(i as f64)),
            ("healthy", Json::Bool(state.healthy)),
            ("generation", json::num(state.generation as f64)),
            ("restarts", json::num(state.restarts as f64)),
        ];
        let fetched = state
            .addr
            .filter(|_| state.healthy)
            .ok_or_else(|| "shard down".to_string())
            .and_then(|addr| fetch_shard_stats(addr, shared.config.connect_timeout));
        match fetched {
            Ok(text) => {
                if let Ok(parsed) = json::parse(&text) {
                    for (slot, (group, field)) in SUMMED_STATS.iter().enumerate() {
                        sums[slot] += parsed
                            .get(group)
                            .and_then(|g| g.get(field))
                            .and_then(Json::as_f64)
                            .unwrap_or(0.0);
                    }
                }
                fields.push(("stats", Json::Raw(text)));
            }
            Err(e) => fields.push(("error", json::str(e))),
        }
        members.push(json::obj(fields));
    }
    // Rebuild the nested {group: {field: sum}} shape from the flat sums.
    let mut totals: Vec<(&str, Json)> = Vec::new();
    for (slot, (group, field)) in SUMMED_STATS.iter().enumerate() {
        if totals.last().map(|(g, _)| *g) != Some(*group) {
            totals.push((group, json::obj(Vec::new())));
        }
        if let Some((_, Json::Obj(fields))) = totals.last_mut() {
            fields.push((field.to_string(), json::num(sums[slot])));
        }
    }
    let metrics = &shared.metrics;
    let runtime = &shared.runtime_metrics;
    json::obj(vec![
        ("role", json::str("router")),
        (
            "uptime_seconds",
            json::num(shared.started.elapsed().as_secs_f64()),
        ),
        (
            "fleet",
            json::obj(vec![
                ("shards", json::num(states.len() as f64)),
                (
                    "healthy",
                    json::num(states.iter().filter(|s| s.healthy).count() as f64),
                ),
            ]),
        ),
        (
            "router",
            json::obj(vec![
                ("proxied_ok", json::num(metrics.proxied_ok.get() as f64)),
                ("failovers", json::num(metrics.failovers.get() as f64)),
                ("bad_gateway", json::num(metrics.bad_gateway.get() as f64)),
                ("unroutable", json::num(metrics.unroutable.get() as f64)),
                (
                    "total_connections",
                    json::num(runtime.total_connections.get() as f64),
                ),
                (
                    "total_requests",
                    json::num(runtime.total_requests.get() as f64),
                ),
                (
                    "shed_connections",
                    json::num(runtime.shed_connections.get() as f64),
                ),
                ("queue_depth", json::num(runtime.queue_depth.get() as f64)),
                (
                    "active_connections",
                    json::num(runtime.active_connections.get() as f64),
                ),
            ]),
        ),
        ("totals", json::obj(totals)),
        ("shards", Json::Arr(members)),
    ])
    .render()
}

/// One `GET /stats` against a shard on a throwaway connection (stats are
/// rare; pooled sockets stay reserved for the align path).
fn fetch_shard_stats(addr: SocketAddr, connect_timeout: Duration) -> Result<String, String> {
    let mut client = Client::connect_timeout(addr, connect_timeout).map_err(|e| e.to_string())?;
    client.set_response_deadline(Duration::from_secs(5));
    client
        .send_with("GET", "/stats", "", true)
        .map_err(|e| format!("send: {e}"))?;
    let response = client.read()?;
    if response.status != 200 {
        return Err(format!("stats answered {}", response.status));
    }
    String::from_utf8(response.body).map_err(|_| "stats body not UTF-8".into())
}
