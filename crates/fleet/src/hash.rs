//! Rendezvous (highest-random-weight) hashing: the fingerprint→shard
//! assignment rule.
//!
//! Every (fingerprint, shard) pair gets a pseudo-random score from a
//! stateless mix; a fingerprint is owned by the shard with the highest
//! score.  The properties that matter for the fleet fall out directly:
//!
//! * **Deterministic** — router restarts, or a second router in front of the
//!   same fleet, compute identical assignments.  No shared state, no
//!   coordination.
//! * **Stable under resize** — removing a shard only moves the fingerprints
//!   it owned (each falls to its second-choice shard); adding shard *n*
//!   only claims the fingerprints whose new top score it holds (~1/(n+1) of
//!   the keyspace).  No ring to rebalance, no virtual-node bookkeeping.
//! * **Built-in failover order** — sorting shards by score yields each
//!   fingerprint's full preference list, so "owner down" degrades to "next
//!   preferred live shard" and every router agrees on what that is.

/// The final mixing step of splitmix64: a full-avalanche `u64 → u64`
/// bijection, so per-shard scores are effectively independent even though
/// shard ids are tiny consecutive integers.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous score of one (fingerprint, shard) pair.
pub fn shard_score(fingerprint: u64, shard: usize) -> u64 {
    mix(fingerprint ^ mix(shard as u64))
}

/// The shard that owns `fingerprint` in a fleet of `n_shards`.
pub fn owner(fingerprint: u64, n_shards: usize) -> usize {
    (0..n_shards.max(1))
        .max_by_key(|&s| shard_score(fingerprint, s))
        .unwrap_or(0)
}

/// Every shard ordered by descending preference for `fingerprint`: the
/// owner first, then the failover sequence.  Ties (astronomically unlikely)
/// break toward the lower shard id so the order stays total and shared by
/// every router.
pub fn preference_order(fingerprint: u64, n_shards: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n_shards.max(1)).collect();
    order.sort_by_key(|&s| (std::cmp::Reverse(shard_score(fingerprint, s)), s));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_first_preference() {
        for fp in [0u64, 1, 41, u64::MAX, 0xdead_beef] {
            for n in 1..=8 {
                assert_eq!(owner(fp, n), preference_order(fp, n)[0]);
            }
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        for fp in 0..512u64 {
            assert_eq!(owner(fp, 4), owner(fp, 4));
            assert_eq!(preference_order(fp, 4), preference_order(fp, 4));
        }
    }

    #[test]
    fn adding_a_shard_only_steals_keys_for_itself() {
        // The rendezvous guarantee: growing 3 → 4 shards never moves a key
        // between the three existing shards.
        let mut moved_to_new = 0usize;
        for fp in 0..4096u64 {
            let before = owner(fp, 3);
            let after = owner(fp, 4);
            if before != after {
                assert_eq!(after, 3, "key {fp} moved between pre-existing shards");
                moved_to_new += 1;
            }
        }
        // ~1/4 of the keyspace should land on the new shard.
        assert!(
            (700..=1350).contains(&moved_to_new),
            "new shard claimed {moved_to_new}/4096 keys"
        );
    }

    #[test]
    fn removing_a_shard_reassigns_only_its_keys() {
        for fp in 0..4096u64 {
            let with = preference_order(fp, 4);
            if with[0] != 3 {
                // Keys not owned by the removed shard must not move.
                assert_eq!(owner(fp, 3), with[0]);
            } else {
                // Keys it owned fall to their second choice.
                assert_eq!(owner(fp, 3), with[1]);
            }
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut counts = [0usize; 4];
        for fp in 0..8192u64 {
            counts[owner(mix(fp), 4)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                (1650..=2450).contains(&count),
                "shard {shard} owns {count}/8192 keys"
            );
        }
    }
}
