//! Pooled keep-alive connections into the shards.
//!
//! Each proxied request would otherwise pay a TCP handshake per hop; with
//! persistent upstream connections the router's added latency is one
//! request/response turn on a warm socket.  Connections are tagged with the
//! shard **generation** they were opened against: after a crash/restart the
//! supervisor bumps the generation, and checkout silently discards stale
//! sockets instead of handing the router a connection into a dead process.

use htc_serve::http::Client;
use std::sync::Mutex;

struct PooledConn {
    client: Client,
    generation: u64,
}

/// Per-shard stacks of idle upstream connections.
pub struct UpstreamPool {
    idle: Mutex<Vec<Vec<PooledConn>>>,
    max_idle_per_shard: usize,
}

impl UpstreamPool {
    pub fn new(n_shards: usize, max_idle_per_shard: usize) -> Self {
        Self {
            idle: Mutex::new((0..n_shards.max(1)).map(|_| Vec::new()).collect()),
            max_idle_per_shard: max_idle_per_shard.max(1),
        }
    }

    /// Pops an idle connection opened against the shard's *current*
    /// generation; connections into older incarnations are dropped on the
    /// way (their sockets are dead or about to be).
    pub fn checkout(&self, shard: usize, current_generation: u64) -> Option<Client> {
        let mut idle = self.idle.lock().unwrap();
        let stack = &mut idle[shard];
        while let Some(conn) = stack.pop() {
            if conn.generation == current_generation {
                return Some(conn.client);
            }
        }
        None
    }

    /// Returns a still-usable connection.  Stale generations and overflow
    /// beyond the per-shard cap are dropped (closing the socket).
    pub fn checkin(&self, shard: usize, client: Client, generation: u64, current_generation: u64) {
        if generation != current_generation {
            return;
        }
        let mut idle = self.idle.lock().unwrap();
        let stack = &mut idle[shard];
        if stack.len() < self.max_idle_per_shard {
            stack.push(PooledConn { client, generation });
        }
    }

    /// Drops every idle connection into one shard (used when it is marked
    /// down, so no request ever dequeues a socket into a corpse).
    pub fn clear(&self, shard: usize) {
        self.idle.lock().unwrap()[shard].clear();
    }

    #[cfg(test)]
    pub(crate) fn idle_count(&self, shard: usize) -> usize {
        self.idle.lock().unwrap()[shard].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn client(listener: &TcpListener) -> Client {
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let _accepted = listener.accept().unwrap();
        Client::from_stream(stream).unwrap()
    }

    #[test]
    fn generations_gate_checkout_and_checkin() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = UpstreamPool::new(1, 4);
        pool.checkin(0, client(&listener), 1, 1);
        pool.checkin(0, client(&listener), 1, 1);
        assert_eq!(pool.idle_count(0), 2);
        // The shard restarted (generation 2): both pooled sockets point at
        // the dead incarnation and must be discarded, not handed out.
        assert!(pool.checkout(0, 2).is_none());
        assert_eq!(pool.idle_count(0), 0);
        // A stale checkin (connection opened against generation 1) is
        // dropped on arrival.
        pool.checkin(0, client(&listener), 1, 2);
        assert_eq!(pool.idle_count(0), 0);
        pool.checkin(0, client(&listener), 2, 2);
        assert!(pool.checkout(0, 2).is_some());
    }

    #[test]
    fn idle_cap_bounds_the_pool() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = UpstreamPool::new(1, 1);
        pool.checkin(0, client(&listener), 1, 1);
        pool.checkin(0, client(&listener), 1, 1);
        assert_eq!(pool.idle_count(0), 1);
    }
}
