//! Immutable undirected simple graph in CSR form.

use crate::{GraphError, Result};
use htc_linalg::CsrMatrix;

/// An undirected simple graph with `n` nodes stored as a CSR adjacency list.
///
/// Nodes are identified by dense indices `0..n`.  Neighbour lists are sorted,
/// which gives `O(log d)` edge queries and makes neighbourhood intersections
/// (the kernel of orbit counting) a linear merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_nodes: usize,
    /// CSR row pointers, length `num_nodes + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbour lists.
    neighbors: Vec<usize>,
    /// Canonical edge list with `u < v`, sorted lexicographically.
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Builds a graph from an edge list.
    ///
    /// Duplicate edges (in either orientation) are collapsed, self-loops are
    /// rejected and node indices must be `< num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut canonical: Vec<(usize, usize)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if u >= num_nodes {
                return Err(GraphError::NodeOutOfRange { node: u, num_nodes });
            }
            if v >= num_nodes {
                return Err(GraphError::NodeOutOfRange { node: v, num_nodes });
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            canonical.push((u.min(v), u.max(v)));
        }
        canonical.sort_unstable();
        canonical.dedup();

        let mut degrees = vec![0usize; num_nodes];
        for &(u, v) in &canonical {
            degrees[u] += 1;
            degrees[v] += 1;
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        offsets.push(0);
        for d in &degrees {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut neighbors = vec![0usize; 2 * canonical.len()];
        let mut cursor = offsets[..num_nodes].to_vec();
        for &(u, v) in &canonical {
            neighbors[cursor[u]] = v;
            cursor[u] += 1;
            neighbors[cursor[v]] = u;
            cursor[v] += 1;
        }
        // Neighbour lists must be sorted for binary-search edge queries.
        for u in 0..num_nodes {
            neighbors[offsets[u]..offsets[u + 1]].sort_unstable();
        }
        Ok(Self {
            num_nodes,
            offsets,
            neighbors,
            edges: canonical,
        })
    }

    /// An empty graph with `num_nodes` isolated nodes.
    pub fn empty(num_nodes: usize) -> Self {
        Self::from_edges(num_nodes, &[]).expect("empty edge list is always valid")
    }

    /// Complete graph on `num_nodes` nodes.
    pub fn complete(num_nodes: usize) -> Self {
        let mut edges = Vec::new();
        for u in 0..num_nodes {
            for v in (u + 1)..num_nodes {
                edges.push((u, v));
            }
        }
        Self::from_edges(num_nodes, &edges).expect("complete graph edges are valid")
    }

    /// Path graph `0 - 1 - ... - (n-1)`.
    pub fn path(num_nodes: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..num_nodes).map(|v| (v - 1, v)).collect();
        Self::from_edges(num_nodes, &edges).expect("path edges are valid")
    }

    /// Cycle graph on `num_nodes >= 3` nodes.
    pub fn cycle(num_nodes: usize) -> Self {
        assert!(num_nodes >= 3, "a cycle needs at least 3 nodes");
        let mut edges: Vec<(usize, usize)> = (1..num_nodes).map(|v| (v - 1, v)).collect();
        edges.push((num_nodes - 1, 0));
        Self::from_edges(num_nodes, &edges).expect("cycle edges are valid")
    }

    /// Star graph with node 0 as the hub and `num_leaves` leaves.
    pub fn star(num_leaves: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..=num_leaves).map(|v| (0, v)).collect();
        Self::from_edges(num_leaves + 1, &edges).expect("star edges are valid")
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of node `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2e / n` (0 when there are no nodes).
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes as f64
        }
    }

    /// Sorted neighbour slice of node `u`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.neighbors[self.offsets[u]..self.offsets[u + 1]]
    }

    /// True if the undirected edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u >= self.num_nodes || v >= self.num_nodes {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Canonical edge list with `u < v`, sorted lexicographically.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Common neighbours of `u` and `v` (sorted), computed by a linear merge.
    pub fn common_neighbors(&self, u: usize, v: usize) -> Vec<usize> {
        let (mut a, mut b) = (self.neighbors(u).iter(), self.neighbors(v).iter());
        let mut out = Vec::new();
        let (mut x, mut y) = (a.next(), b.next());
        while let (Some(&p), Some(&q)) = (x, y) {
            match p.cmp(&q) {
                std::cmp::Ordering::Less => x = a.next(),
                std::cmp::Ordering::Greater => y = b.next(),
                std::cmp::Ordering::Equal => {
                    out.push(p);
                    x = a.next();
                    y = b.next();
                }
            }
        }
        out
    }

    /// Number of triangles that contain the edge `(u, v)`.
    pub fn edge_triangles(&self, u: usize, v: usize) -> usize {
        self.common_neighbors(u, v).len()
    }

    /// Total number of triangles in the graph.
    pub fn triangle_count(&self) -> usize {
        self.edges
            .iter()
            .map(|&(u, v)| self.edge_triangles(u, v))
            .sum::<usize>()
            / 3
    }

    /// Degree sequence (indexed by node).
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_nodes).map(|u| self.degree(u)).collect()
    }

    /// Binary adjacency matrix as CSR (both orientations stored).
    pub fn adjacency(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(2 * self.edges.len());
        for &(u, v) in &self.edges {
            triplets.push((u, v, 1.0));
            triplets.push((v, u, 1.0));
        }
        CsrMatrix::from_triplets(self.num_nodes, self.num_nodes, &triplets)
            .expect("edge indices are validated at construction")
    }

    /// Connected components as a vector of component ids (0-based, ordered by
    /// first appearance).
    pub fn connected_components(&self) -> Vec<usize> {
        let mut comp = vec![usize::MAX; self.num_nodes];
        let mut next = 0;
        let mut stack = Vec::new();
        for start in 0..self.num_nodes {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u) {
                    if comp[v] == usize::MAX {
                        comp[v] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        self.connected_components()
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m + 1)
    }

    /// True if the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        self.num_components() <= 1
    }

    /// Returns the subgraph induced by `nodes` along with the mapping from new
    /// indices to original node ids.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> Result<(Graph, Vec<usize>)> {
        let mut index_of = std::collections::HashMap::with_capacity(nodes.len());
        for (new, &old) in nodes.iter().enumerate() {
            if old >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: old,
                    num_nodes: self.num_nodes,
                });
            }
            index_of.insert(old, new);
        }
        let mut edges = Vec::new();
        for &(u, v) in &self.edges {
            if let (Some(&nu), Some(&nv)) = (index_of.get(&u), index_of.get(&v)) {
                edges.push((nu, nv));
            }
        }
        Ok((Graph::from_edges(nodes.len(), &edges)?, nodes.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        // Triangle 0-1-2 plus pendant 3 attached to 0, isolated node 4.
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap()
    }

    #[test]
    fn basic_construction() {
        let g = toy();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(3, 4));
        assert!(!g.has_edge(0, 9));
    }

    #[test]
    fn duplicates_and_orientations_collapse() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_self_loop_and_out_of_range() {
        assert!(matches!(
            Graph::from_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop(1))
        ));
        assert!(matches!(
            Graph::from_edges(3, &[(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn named_constructors() {
        assert_eq!(Graph::empty(4).num_edges(), 0);
        assert_eq!(Graph::complete(5).num_edges(), 10);
        assert_eq!(Graph::path(4).num_edges(), 3);
        assert_eq!(Graph::cycle(4).num_edges(), 4);
        let s = Graph::star(3);
        assert_eq!(s.num_nodes(), 4);
        assert_eq!(s.degree(0), 3);
    }

    #[test]
    fn degree_statistics() {
        let g = toy();
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(g.degrees(), vec![3, 2, 2, 1, 0]);
    }

    #[test]
    fn common_neighbors_and_triangles() {
        let g = toy();
        assert_eq!(g.common_neighbors(0, 1), vec![2]);
        assert_eq!(g.common_neighbors(0, 3), Vec::<usize>::new());
        assert_eq!(g.edge_triangles(0, 1), 1);
        assert_eq!(g.triangle_count(), 1);
        assert_eq!(Graph::complete(4).triangle_count(), 4);
        assert_eq!(Graph::cycle(5).triangle_count(), 0);
    }

    #[test]
    fn adjacency_is_symmetric_binary() {
        let g = toy();
        let a = g.adjacency();
        assert_eq!(a.nnz(), 8);
        assert!(a.is_symmetric(0.0));
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
        assert_eq!(a.get(0, 4), 0.0);
    }

    #[test]
    fn components_and_connectivity() {
        let g = toy();
        let comp = g.connected_components();
        assert_eq!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[4]);
        assert_eq!(g.num_components(), 2);
        assert!(!g.is_connected());
        assert!(Graph::cycle(6).is_connected());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = toy();
        let (sub, map) = g.induced_subgraph(&[0, 1, 2]).unwrap();
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map, vec![0, 1, 2]);
        let (sub2, _) = g.induced_subgraph(&[3, 4]).unwrap();
        assert_eq!(sub2.num_edges(), 0);
        assert!(g.induced_subgraph(&[10]).is_err());
    }
}
