//! Attributed networks `G = (V, A, X)`.

use crate::graph::Graph;
use crate::{GraphError, Result};
use htc_linalg::DenseMatrix;

/// A graph together with a dense node-attribute matrix.
///
/// This is the input object of every alignment method in the workspace: the
/// adjacency structure comes from [`Graph`] and node `i`'s attribute vector is
/// row `i` of the attribute matrix.  Methods that ignore attributes simply use
/// [`AttributedNetwork::topology_only`], which attaches a constant one-column
/// attribute matrix (equivalent to using node degree-independent features).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributedNetwork {
    graph: Graph,
    attributes: DenseMatrix,
}

impl AttributedNetwork {
    /// Pairs a graph with a node-attribute matrix.
    ///
    /// The attribute matrix must have exactly one row per node.
    pub fn new(graph: Graph, attributes: DenseMatrix) -> Result<Self> {
        if attributes.rows() != graph.num_nodes() {
            return Err(GraphError::AttributeShape {
                nodes: graph.num_nodes(),
                rows: attributes.rows(),
            });
        }
        Ok(Self { graph, attributes })
    }

    /// Wraps a bare graph with a constant single-column attribute matrix.
    pub fn topology_only(graph: Graph) -> Self {
        let attributes = DenseMatrix::filled(graph.num_nodes(), 1, 1.0);
        Self { graph, attributes }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The node-attribute matrix (one row per node).
    #[inline]
    pub fn attributes(&self) -> &DenseMatrix {
        &self.attributes
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Attribute dimensionality.
    #[inline]
    pub fn attr_dim(&self) -> usize {
        self.attributes.cols()
    }

    /// Attribute vector of node `u`.
    #[inline]
    pub fn node_attributes(&self, u: usize) -> &[f64] {
        self.attributes.row(u)
    }

    /// Replaces the attribute matrix, keeping the graph.
    pub fn with_attributes(&self, attributes: DenseMatrix) -> Result<Self> {
        Self::new(self.graph.clone(), attributes)
    }

    /// Decomposes into the graph and attribute matrix.
    pub fn into_parts(self) -> (Graph, DenseMatrix) {
        (self.graph, self.attributes)
    }

    /// Appends the (normalised) node degree as an extra attribute column.
    ///
    /// Several baselines (REGAL, degree heuristics) expect a structural
    /// feature even when the dataset provides none; appending `deg(u) /
    /// max_deg` is the conventional choice.
    pub fn with_degree_feature(&self) -> Self {
        let n = self.num_nodes();
        let d = self.attr_dim();
        let max_deg = self.graph.max_degree().max(1) as f64;
        let mut data = Vec::with_capacity(n * (d + 1));
        for u in 0..n {
            data.extend_from_slice(self.attributes.row(u));
            data.push(self.graph.degree(u) as f64 / max_deg);
        }
        let attributes = DenseMatrix::from_vec(n, d + 1, data)
            .expect("dimensions are consistent by construction");
        Self {
            graph: self.graph.clone(),
            attributes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> AttributedNetwork {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let x = DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        AttributedNetwork::new(g, x).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let net = toy();
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_edges(), 2);
        assert_eq!(net.attr_dim(), 2);
        assert_eq!(net.node_attributes(2), &[1.0, 1.0]);
    }

    #[test]
    fn rejects_mismatched_attributes() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let x = DenseMatrix::zeros(2, 4);
        assert!(matches!(
            AttributedNetwork::new(g, x),
            Err(GraphError::AttributeShape { nodes: 3, rows: 2 })
        ));
    }

    #[test]
    fn topology_only_uses_constant_attribute() {
        let net = AttributedNetwork::topology_only(Graph::cycle(4));
        assert_eq!(net.attr_dim(), 1);
        assert!(net.attributes().data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn with_attributes_swaps_matrix() {
        let net = toy();
        let new_x = DenseMatrix::filled(3, 5, 0.5);
        let swapped = net.with_attributes(new_x).unwrap();
        assert_eq!(swapped.attr_dim(), 5);
        assert!(net.with_attributes(DenseMatrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn degree_feature_appended_and_normalised() {
        let net = toy().with_degree_feature();
        assert_eq!(net.attr_dim(), 3);
        // Node 1 has the max degree (2) -> normalised to 1.0.
        assert_eq!(net.node_attributes(1)[2], 1.0);
        assert_eq!(net.node_attributes(0)[2], 0.5);
    }

    #[test]
    fn into_parts_round_trip() {
        let net = toy();
        let (g, x) = net.clone().into_parts();
        let rebuilt = AttributedNetwork::new(g, x).unwrap();
        assert_eq!(rebuilt, net);
    }
}
