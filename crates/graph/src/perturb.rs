//! Graph perturbation: the operations used to derive alignment targets.
//!
//! The paper constructs its synthetic target networks by randomly removing a
//! fraction of the source edges while preserving node identity (Section V-A),
//! and its real-world pairs differ by both structural and attribute noise.
//! This module implements those transformations:
//!
//! * [`remove_edges`] — drop a random fraction of edges (structural noise);
//! * [`add_random_edges`] — insert spurious edges;
//! * [`permute_graph`] / [`permute_network`] — relabel nodes by a permutation,
//!   returning the ground-truth mapping used for evaluation;
//! * [`perturb_attributes`] — add Gaussian noise / flip a fraction of binary
//!   attributes (attribute-consistency violation).

use crate::attributed::AttributedNetwork;
use crate::graph::Graph;
use htc_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Removes `ratio` (0.0–1.0) of the edges uniformly at random.
pub fn remove_edges(graph: &Graph, ratio: f64, rng: &mut StdRng) -> Graph {
    let ratio = ratio.clamp(0.0, 1.0);
    let mut edges: Vec<(usize, usize)> = graph.edges().to_vec();
    edges.shuffle(rng);
    let keep = ((1.0 - ratio) * edges.len() as f64).round() as usize;
    edges.truncate(keep);
    Graph::from_edges(graph.num_nodes(), &edges).expect("subset of valid edges is valid")
}

/// Adds `count` random new edges (skipping duplicates and self-loops).
pub fn add_random_edges(graph: &Graph, count: usize, rng: &mut StdRng) -> Graph {
    let n = graph.num_nodes();
    let mut edges: Vec<(usize, usize)> = graph.edges().to_vec();
    let mut existing: std::collections::BTreeSet<(usize, usize)> = edges.iter().copied().collect();
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let target = (edges.len() + count).min(max_edges);
    let mut guard = 0usize;
    while existing.len() < target && guard < 100 * count + 100 {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let e = (u.min(v), u.max(v));
        if existing.insert(e) {
            edges.push(e);
        }
    }
    Graph::from_edges(n, &edges).expect("generated edges are valid")
}

/// Relabels the nodes of `graph` so that original node `u` becomes
/// `perm[u]`.
///
/// Returns the relabelled graph.  `perm` must be a permutation of
/// `0..num_nodes`; this is asserted in debug builds.
pub fn permute_graph(graph: &Graph, perm: &[usize]) -> Graph {
    debug_assert_eq!(perm.len(), graph.num_nodes());
    debug_assert!({
        let mut sorted = perm.to_vec();
        sorted.sort_unstable();
        sorted == (0..graph.num_nodes()).collect::<Vec<_>>()
    });
    let edges: Vec<(usize, usize)> = graph
        .edges()
        .iter()
        .map(|&(u, v)| (perm[u], perm[v]))
        .collect();
    Graph::from_edges(graph.num_nodes(), &edges).expect("permutation preserves validity")
}

/// Relabels an attributed network by `perm` (node `u` becomes `perm[u]`),
/// permuting the attribute rows consistently.
pub fn permute_network(network: &AttributedNetwork, perm: &[usize]) -> AttributedNetwork {
    let graph = permute_graph(network.graph(), perm);
    let n = network.num_nodes();
    let d = network.attr_dim();
    let mut data = vec![0.0; n * d];
    for (u, &new) in perm.iter().enumerate() {
        data[new * d..(new + 1) * d].copy_from_slice(network.node_attributes(u));
    }
    let attributes = DenseMatrix::from_vec(n, d, data).expect("shape preserved");
    AttributedNetwork::new(graph, attributes).expect("row count preserved")
}

/// Adds zero-mean Gaussian noise with standard deviation `sigma` to every
/// attribute entry (Box–Muller; no external distribution crate needed).
pub fn perturb_attributes_gaussian(
    attributes: &DenseMatrix,
    sigma: f64,
    rng: &mut StdRng,
) -> DenseMatrix {
    let mut out = attributes.clone();
    for v in out.data_mut() {
        *v += sigma * standard_normal(rng);
    }
    out
}

/// Flips each entry of a 0/1 attribute matrix with probability `p`.
pub fn perturb_attributes_flip(attributes: &DenseMatrix, p: f64, rng: &mut StdRng) -> DenseMatrix {
    let mut out = attributes.clone();
    for v in out.data_mut() {
        if rng.gen::<f64>() < p {
            *v = if *v > 0.5 { 0.0 } else { 1.0 };
        }
    }
    out
}

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A ground-truth alignment between a source and a target network.
///
/// `target_of[s]` is the target node corresponding to source node `s`, when it
/// exists.  For the synthetic datasets every source node has a target
/// counterpart; the struct still models partial ground truth because the
/// real-world datasets in the paper only share a subset of anchor links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    target_of: Vec<Option<usize>>,
}

impl GroundTruth {
    /// Builds ground truth from an explicit mapping.
    pub fn new(target_of: Vec<Option<usize>>) -> Self {
        Self { target_of }
    }

    /// Identity ground truth for `n` nodes (node `i` aligns to node `i`).
    pub fn identity(n: usize) -> Self {
        Self {
            target_of: (0..n).map(Some).collect(),
        }
    }

    /// Ground truth induced by a permutation: source `u` aligns to `perm[u]`.
    pub fn from_permutation(perm: &[usize]) -> Self {
        Self {
            target_of: perm.iter().map(|&v| Some(v)).collect(),
        }
    }

    /// Number of source nodes covered by this structure.
    pub fn num_source_nodes(&self) -> usize {
        self.target_of.len()
    }

    /// Number of anchor links (source nodes with a known target).
    pub fn num_anchors(&self) -> usize {
        self.target_of.iter().filter(|t| t.is_some()).count()
    }

    /// The target anchor of source node `s`, if known.
    pub fn target_of(&self, s: usize) -> Option<usize> {
        self.target_of.get(s).copied().flatten()
    }

    /// Iterates over all `(source, target)` anchor pairs.
    pub fn anchors(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.target_of
            .iter()
            .enumerate()
            .filter_map(|(s, t)| t.map(|t| (s, t)))
    }

    /// Keeps only a random fraction of the anchors (used to build the 10 %
    /// supervision seed given to the supervised baselines).
    pub fn sample_fraction(&self, fraction: f64, rng: &mut StdRng) -> GroundTruth {
        let anchors: Vec<(usize, usize)> = self.anchors().collect();
        let mut indices: Vec<usize> = (0..anchors.len()).collect();
        indices.shuffle(rng);
        let keep = ((fraction.clamp(0.0, 1.0)) * anchors.len() as f64).round() as usize;
        let kept: std::collections::BTreeSet<usize> = indices.into_iter().take(keep).collect();
        let mut target_of = vec![None; self.target_of.len()];
        for (i, &(s, t)) in anchors.iter().enumerate() {
            if kept.contains(&i) {
                target_of[s] = Some(t);
            }
        }
        GroundTruth { target_of }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_permutation, seeded_rng};

    #[test]
    fn remove_edges_keeps_requested_fraction() {
        let mut rng = seeded_rng(10);
        let g = Graph::complete(20);
        let pruned = remove_edges(&g, 0.3, &mut rng);
        assert_eq!(pruned.num_edges(), (0.7 * 190.0_f64).round() as usize);
        assert_eq!(pruned.num_nodes(), 20);
        // Every surviving edge existed in the original graph.
        for &(u, v) in pruned.edges() {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn remove_all_and_none() {
        let mut rng = seeded_rng(11);
        let g = Graph::cycle(10);
        assert_eq!(remove_edges(&g, 0.0, &mut rng).num_edges(), 10);
        assert_eq!(remove_edges(&g, 1.0, &mut rng).num_edges(), 0);
    }

    #[test]
    fn add_random_edges_grows_graph() {
        let mut rng = seeded_rng(12);
        let g = Graph::path(30);
        let denser = add_random_edges(&g, 15, &mut rng);
        assert_eq!(denser.num_edges(), 29 + 15);
        for &(u, v) in g.edges() {
            assert!(denser.has_edge(u, v));
        }
    }

    #[test]
    fn permute_graph_preserves_structure() {
        let mut rng = seeded_rng(13);
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let perm = random_permutation(5, &mut rng);
        let pg = permute_graph(&g, &perm);
        assert_eq!(pg.num_edges(), g.num_edges());
        for &(u, v) in g.edges() {
            assert!(pg.has_edge(perm[u], perm[v]));
        }
        assert_eq!(pg.triangle_count(), g.triangle_count());
    }

    #[test]
    fn permute_network_moves_attributes_with_nodes() {
        let g = Graph::path(3);
        let x = DenseMatrix::from_vec(3, 1, vec![10.0, 20.0, 30.0]).unwrap();
        let net = AttributedNetwork::new(g, x).unwrap();
        let perm = vec![2, 0, 1];
        let permuted = permute_network(&net, &perm);
        // Original node 0 (attribute 10) became node 2.
        assert_eq!(permuted.node_attributes(2), &[10.0]);
        assert_eq!(permuted.node_attributes(0), &[20.0]);
        assert!(permuted.graph().has_edge(2, 0));
        assert!(permuted.graph().has_edge(0, 1));
    }

    #[test]
    fn gaussian_noise_changes_values_but_not_shape() {
        let mut rng = seeded_rng(14);
        let x = DenseMatrix::filled(10, 4, 1.0);
        let noisy = perturb_attributes_gaussian(&x, 0.1, &mut rng);
        assert_eq!(noisy.shape(), (10, 4));
        assert!(!noisy.approx_eq(&x, 1e-9));
        // Noise is small on average.
        let diff = noisy.sub(&x).unwrap().frobenius_norm() / (40.0_f64).sqrt();
        assert!(diff < 0.5, "rms diff {diff}");
    }

    #[test]
    fn flip_noise_only_toggles_bits() {
        let mut rng = seeded_rng(15);
        let x = DenseMatrix::from_vec(2, 3, vec![0.0, 1.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        let flipped = perturb_attributes_flip(&x, 0.5, &mut rng);
        for &v in flipped.data() {
            assert!(v == 0.0 || v == 1.0);
        }
        let same = perturb_attributes_flip(&x, 0.0, &mut rng);
        assert!(same.approx_eq(&x, 0.0));
    }

    #[test]
    fn standard_normal_statistics() {
        let mut rng = seeded_rng(16);
        let samples: Vec<f64> = (0..20000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn ground_truth_accessors() {
        let gt = GroundTruth::from_permutation(&[2, 0, 1]);
        assert_eq!(gt.num_anchors(), 3);
        assert_eq!(gt.target_of(0), Some(2));
        assert_eq!(gt.anchors().count(), 3);
        let id = GroundTruth::identity(4);
        assert_eq!(id.target_of(3), Some(3));
        let partial = GroundTruth::new(vec![Some(1), None, Some(0)]);
        assert_eq!(partial.num_anchors(), 2);
        assert_eq!(partial.target_of(1), None);
    }

    #[test]
    fn sample_fraction_keeps_requested_share() {
        let mut rng = seeded_rng(17);
        let gt = GroundTruth::identity(100);
        let sampled = gt.sample_fraction(0.1, &mut rng);
        assert_eq!(sampled.num_anchors(), 10);
        assert_eq!(sampled.num_source_nodes(), 100);
        // Every sampled anchor agrees with the full ground truth.
        for (s, t) in sampled.anchors() {
            assert_eq!(gt.target_of(s), Some(t));
        }
    }
}
