//! # htc-graph
//!
//! Graph substrate for the HTC network-alignment reproduction.
//!
//! The paper operates on *attributed networks* `G = (V, A, X)`: an undirected
//! simple graph together with a dense node-attribute matrix.  This crate
//! provides:
//!
//! * [`Graph`] — an immutable undirected simple graph stored in CSR form with
//!   O(1) degree queries and O(log d) edge lookups;
//! * [`GraphBuilder`] — an incremental builder that deduplicates edges and
//!   rejects self-loops;
//! * [`AttributedNetwork`] — a graph paired with a node-attribute matrix;
//! * [`generators`] — random-graph models (Erdős–Rényi, Barabási–Albert,
//!   Watts–Strogatz, planted partition) used to synthesise the evaluation
//!   datasets;
//! * [`perturb`] — edge removal, node permutation and attribute noise, the
//!   operations used to create alignment targets and robustness workloads;
//! * [`io`] — plain-text edge-list / attribute serialisation for examples.

pub mod attributed;
pub mod builder;
pub mod generators;
pub mod graph;
pub mod io;
pub mod perturb;

pub use attributed::AttributedNetwork;
pub use builder::GraphBuilder;
pub use graph::Graph;

/// Errors produced by graph construction and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node index was outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// A self-loop `(u, u)` was supplied; the alignment graphs are simple.
    SelfLoop(usize),
    /// The attribute matrix has a different number of rows than the graph has
    /// nodes.
    AttributeShape {
        /// Number of nodes in the graph.
        nodes: usize,
        /// Number of attribute rows supplied.
        rows: usize,
    },
    /// A parse or I/O failure while reading a graph file.
    Io(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::SelfLoop(u) => write!(f, "self-loop on node {u} is not allowed"),
            GraphError::AttributeShape { nodes, rows } => write!(
                f,
                "attribute matrix has {rows} rows but the graph has {nodes} nodes"
            ),
            GraphError::Io(msg) => write!(f, "graph i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(GraphError::SelfLoop(3).to_string().contains("3"));
        assert!(GraphError::NodeOutOfRange {
            node: 9,
            num_nodes: 5
        }
        .to_string()
        .contains("9"));
        assert!(GraphError::AttributeShape { nodes: 4, rows: 2 }
            .to_string()
            .contains("2"));
        assert!(GraphError::Io("nope".into()).to_string().contains("nope"));
    }
}
