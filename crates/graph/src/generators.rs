//! Random-graph generators.
//!
//! These models are used by `htc-datasets` to synthesise source networks whose
//! global statistics (size, density, degree distribution, clustering) match
//! the datasets reported in Table I of the paper:
//!
//! * [`erdos_renyi_gnm`] — uniform random graphs, a neutral substrate;
//! * [`barabasi_albert`] — preferential attachment, heavy-tailed degrees
//!   (social-network-like datasets: Douban, Flickr, Myspace);
//! * [`watts_strogatz`] — rewired ring lattices with high clustering
//!   (brain-network-like BN dataset);
//! * [`planted_partition`] — community-structured graphs (co-actor networks
//!   such as Allmovie/Imdb, organisational networks such as Econ).
//!
//! All generators are deterministic given the supplied RNG.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Convenience constructor for a seeded RNG used across the workspace.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// G(n, m) Erdős–Rényi graph: exactly `m` distinct edges chosen uniformly.
///
/// `m` is clamped to the number of possible edges.
pub fn erdos_renyi_gnm(n: usize, m: usize, rng: &mut StdRng) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut builder = GraphBuilder::new(n);
    while builder.num_edges() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            let _ = builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// G(n, p) Erdős–Rényi graph: each possible edge included with probability `p`.
pub fn erdos_renyi_gnp(n: usize, p: f64, rng: &mut StdRng) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                builder.add_edge(u, v).expect("indices are in range");
            }
        }
    }
    builder.build()
}

/// Barabási–Albert preferential-attachment graph.
///
/// Starts from a clique on `m0 = m_attach + 1` nodes and attaches every new
/// node to `m_attach` existing nodes chosen proportionally to degree.
pub fn barabasi_albert(n: usize, m_attach: usize, rng: &mut StdRng) -> Graph {
    let m_attach = m_attach.max(1);
    let m0 = (m_attach + 1).min(n.max(1));
    let mut builder = GraphBuilder::new(n);
    // Degree-proportional sampling via a repeated-endpoint list.
    let mut endpoints: Vec<usize> = Vec::new();
    for u in 0..m0 {
        for v in (u + 1)..m0 {
            builder
                .add_edge(u, v)
                .expect("seed clique indices are valid");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for new in m0..n {
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0;
        while targets.len() < m_attach.min(new) && guard < 50 * m_attach + 50 {
            guard += 1;
            let t = if endpoints.is_empty() || rng.gen::<f64>() < 0.05 {
                rng.gen_range(0..new)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if t != new {
                targets.insert(t);
            }
        }
        for &t in &targets {
            builder.add_edge(new, t).expect("indices are in range");
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    builder.build()
}

/// Watts–Strogatz small-world graph: ring lattice with `k` nearest neighbours
/// per node (rounded down to even), each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut StdRng) -> Graph {
    let half = (k / 2).max(1);
    let mut builder = GraphBuilder::new(n);
    if n < 2 {
        return builder.build();
    }
    for u in 0..n {
        for offset in 1..=half {
            let v = (u + offset) % n;
            if u == v {
                continue;
            }
            if rng.gen::<f64>() < beta {
                // Rewire the lattice edge to a uniformly random non-neighbour.
                let mut guard = 0;
                loop {
                    guard += 1;
                    let w = rng.gen_range(0..n);
                    if w != u && !builder.has_edge(u, w) {
                        builder.add_edge(u, w).expect("indices are in range");
                        break;
                    }
                    if guard > 100 {
                        let _ = builder.add_edge(u, v);
                        break;
                    }
                }
            } else {
                let _ = builder.add_edge(u, v);
            }
        }
    }
    builder.build()
}

/// Planted-partition (stochastic block model) graph.
///
/// Nodes are split into `communities` equally sized blocks; an edge appears
/// with probability `p_in` inside a block and `p_out` across blocks.
/// Returns the graph and the community id of every node.
pub fn planted_partition(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut StdRng,
) -> (Graph, Vec<usize>) {
    let communities = communities.max(1);
    let labels: Vec<usize> = (0..n).map(|u| u * communities / n.max(1)).collect();
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if labels[u] == labels[v] { p_in } else { p_out };
            if rng.gen::<f64>() < p {
                builder.add_edge(u, v).expect("indices are in range");
            }
        }
    }
    (builder.build(), labels)
}

/// Generates a random permutation of `0..n`.
pub fn random_permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_requested_edges() {
        let mut rng = seeded_rng(1);
        let g = erdos_renyi_gnm(50, 120, &mut rng);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 120);
    }

    #[test]
    fn gnm_clamps_to_maximum() {
        let mut rng = seeded_rng(2);
        let g = erdos_renyi_gnm(5, 1000, &mut rng);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnp_density_roughly_matches_p() {
        let mut rng = seeded_rng(3);
        let g = erdos_renyi_gnp(120, 0.1, &mut rng);
        let expected = 0.1 * (120.0 * 119.0 / 2.0);
        let actual = g.num_edges() as f64;
        assert!(
            (actual - expected).abs() < 0.35 * expected,
            "actual={actual}"
        );
    }

    #[test]
    fn barabasi_albert_has_heavy_tail() {
        let mut rng = seeded_rng(4);
        let g = barabasi_albert(300, 3, &mut rng);
        assert_eq!(g.num_nodes(), 300);
        // Preferential attachment should produce a hub much larger than the
        // attachment parameter.
        assert!(g.max_degree() > 12, "max degree {}", g.max_degree());
        // Every non-seed node attaches with at least one edge.
        assert!(g.degrees().iter().filter(|&&d| d == 0).count() == 0);
    }

    #[test]
    fn watts_strogatz_zero_beta_is_lattice() {
        let mut rng = seeded_rng(5);
        let g = watts_strogatz(20, 4, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 40);
        for u in 0..20 {
            assert!(g.has_edge(u, (u + 1) % 20));
            assert!(g.has_edge(u, (u + 2) % 20));
        }
    }

    #[test]
    fn watts_strogatz_rewiring_preserves_node_count() {
        let mut rng = seeded_rng(6);
        let g = watts_strogatz(60, 6, 0.3, &mut rng);
        assert_eq!(g.num_nodes(), 60);
        assert!(g.num_edges() > 100);
    }

    #[test]
    fn planted_partition_favours_intra_community_edges() {
        let mut rng = seeded_rng(7);
        let (g, labels) = planted_partition(100, 4, 0.3, 0.01, &mut rng);
        assert_eq!(labels.len(), 100);
        let (mut intra, mut inter) = (0usize, 0usize);
        for &(u, v) in g.edges() {
            if labels[u] == labels[v] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 3 * inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let g1 = barabasi_albert(80, 2, &mut seeded_rng(42));
        let g2 = barabasi_albert(80, 2, &mut seeded_rng(42));
        assert_eq!(g1, g2);
        let g3 = erdos_renyi_gnm(80, 150, &mut seeded_rng(9));
        let g4 = erdos_renyi_gnm(80, 150, &mut seeded_rng(9));
        assert_eq!(g3, g4);
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let mut rng = seeded_rng(8);
        let p = random_permutation(40, &mut rng);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40).collect::<Vec<_>>());
    }
}
