//! Plain-text serialisation of graphs and attributed networks.
//!
//! The format is deliberately simple so the example binaries can ship small
//! datasets as text files and users can plug in their own edge lists:
//!
//! ```text
//! # comment lines start with '#'
//! <num_nodes>
//! u v        # one undirected edge per line
//! ```
//!
//! Attribute matrices use one whitespace-separated row per node.

use crate::attributed::AttributedNetwork;
use crate::graph::Graph;
use crate::{GraphError, Result};
use htc_linalg::DenseMatrix;
use std::fmt::Write as _;
use std::path::Path;

/// Serialises a graph to the edge-list text format.
pub fn graph_to_string(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# htc edge list: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    let _ = writeln!(out, "{}", graph.num_nodes());
    for &(u, v) in graph.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Parses a graph from the edge-list text format.
pub fn graph_from_string(text: &str) -> Result<Graph> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let n: usize = lines
        .next()
        .ok_or_else(|| GraphError::Io("missing node-count line".into()))?
        .parse()
        .map_err(|e| GraphError::Io(format!("bad node count: {e}")))?;
    let mut edges = Vec::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        let u: usize = parts
            .next()
            .ok_or_else(|| GraphError::Io(format!("bad edge line: {line:?}")))?
            .parse()
            .map_err(|e| GraphError::Io(format!("bad edge endpoint: {e}")))?;
        let v: usize = parts
            .next()
            .ok_or_else(|| GraphError::Io(format!("bad edge line: {line:?}")))?
            .parse()
            .map_err(|e| GraphError::Io(format!("bad edge endpoint: {e}")))?;
        edges.push((u, v));
    }
    Graph::from_edges(n, &edges)
}

/// Serialises an attribute matrix, one whitespace-separated row per node.
pub fn attributes_to_string(attributes: &DenseMatrix) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# htc attributes: {} x {}",
        attributes.rows(),
        attributes.cols()
    );
    for r in 0..attributes.rows() {
        let row: Vec<String> = attributes.row(r).iter().map(|v| format!("{v}")).collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    out
}

/// Parses an attribute matrix written by [`attributes_to_string`].
pub fn attributes_from_string(text: &str) -> Result<DenseMatrix> {
    let rows: Vec<Vec<f64>> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|line| {
            line.split_whitespace()
                .map(|tok| {
                    tok.parse::<f64>()
                        .map_err(|e| GraphError::Io(format!("bad attribute value {tok:?}: {e}")))
                })
                .collect::<Result<Vec<f64>>>()
        })
        .collect::<Result<Vec<Vec<f64>>>>()?;
    DenseMatrix::from_rows(&rows).map_err(|e| GraphError::Io(format!("ragged attribute rows: {e}")))
}

/// Writes a graph to a file in edge-list format.
pub fn write_graph(graph: &Graph, path: &Path) -> Result<()> {
    std::fs::write(path, graph_to_string(graph)).map_err(|e| GraphError::Io(e.to_string()))
}

/// Reads a graph from an edge-list file.
pub fn read_graph(path: &Path) -> Result<Graph> {
    let text = std::fs::read_to_string(path).map_err(|e| GraphError::Io(e.to_string()))?;
    graph_from_string(&text)
}

/// Writes an attributed network as `<stem>.edges` and `<stem>.attrs`.
pub fn write_network(network: &AttributedNetwork, stem: &Path) -> Result<()> {
    let edges_path = stem.with_extension("edges");
    let attrs_path = stem.with_extension("attrs");
    write_graph(network.graph(), &edges_path)?;
    std::fs::write(&attrs_path, attributes_to_string(network.attributes()))
        .map_err(|e| GraphError::Io(e.to_string()))
}

/// Reads an attributed network written by [`write_network`].
pub fn read_network(stem: &Path) -> Result<AttributedNetwork> {
    let graph = read_graph(&stem.with_extension("edges"))?;
    let text = std::fs::read_to_string(stem.with_extension("attrs"))
        .map_err(|e| GraphError::Io(e.to_string()))?;
    let attributes = attributes_from_string(&text)?;
    AttributedNetwork::new(graph, attributes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_text_round_trip() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3), (1, 2)]).unwrap();
        let text = graph_to_string(&g);
        let parsed = graph_from_string(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn graph_parse_errors() {
        assert!(graph_from_string("").is_err());
        assert!(graph_from_string("3\n0").is_err());
        assert!(graph_from_string("x\n0 1").is_err());
        assert!(graph_from_string("3\n0 z").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n3\n# edge below\n0 2\n";
        let g = graph_from_string(text).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn attribute_text_round_trip() {
        let x = DenseMatrix::from_vec(2, 3, vec![1.0, -0.5, 2.25, 0.0, 4.0, 5.5]).unwrap();
        let parsed = attributes_from_string(&attributes_to_string(&x)).unwrap();
        assert!(parsed.approx_eq(&x, 1e-12));
    }

    #[test]
    fn attribute_parse_rejects_garbage() {
        assert!(attributes_from_string("1.0 oops").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("htc_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("toy");
        let g = Graph::cycle(5);
        let x = DenseMatrix::filled(5, 2, 0.5);
        let net = AttributedNetwork::new(g, x).unwrap();
        write_network(&net, &stem).unwrap();
        let back = read_network(&stem).unwrap();
        assert_eq!(back.num_edges(), 5);
        assert!(back.attributes().approx_eq(net.attributes(), 1e-12));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let err = read_graph(Path::new("/nonexistent/htc/file.edges")).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
