//! Incremental graph construction.

use crate::graph::Graph;
use crate::{GraphError, Result};
use std::collections::BTreeSet;

/// Incremental builder for [`Graph`].
///
/// The builder accepts edges in any order and orientation, silently ignores
/// duplicates, and rejects self-loops and out-of-range endpoints at insertion
/// time so that errors point at the offending edge rather than surfacing at
/// finalisation.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes the final graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of distinct edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True if the undirected edge `(u, v)` has already been added.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Returns `Ok(true)` if the edge was new, `Ok(false)` if it was already
    /// present, and an error for self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<bool> {
        if u >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                num_nodes: self.num_nodes,
            });
        }
        if v >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                num_nodes: self.num_nodes,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        Ok(self.edges.insert((u.min(v), u.max(v))))
    }

    /// Adds every edge from an iterator, stopping at the first error.
    pub fn add_edges<I: IntoIterator<Item = (usize, usize)>>(&mut self, edges: I) -> Result<()> {
        for (u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(())
    }

    /// Removes the undirected edge `(u, v)` if present; returns whether it was.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        self.edges.remove(&(u.min(v), u.max(v)))
    }

    /// Finalises the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let edges: Vec<(usize, usize)> = self.edges.into_iter().collect();
        Graph::from_edges(self.num_nodes, &edges)
            .expect("builder validates edges at insertion time")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_deduplicated_graph() {
        let mut b = GraphBuilder::new(4);
        assert!(b.add_edge(0, 1).unwrap());
        assert!(!b.add_edge(1, 0).unwrap());
        assert!(b.add_edge(2, 3).unwrap());
        assert_eq!(b.num_edges(), 2);
        assert!(b.has_edge(1, 0));
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(3, 2));
    }

    #[test]
    fn rejects_invalid_edges_eagerly() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(0, 0).is_err());
        assert!(b.add_edge(0, 7).is_err());
        assert!(b.add_edges([(0, 1), (1, 5)]).is_err());
        // The valid prefix was kept.
        assert_eq!(b.num_edges(), 1);
    }

    #[test]
    fn remove_edge_round_trip() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert!(b.remove_edge(1, 0));
        assert!(!b.remove_edge(1, 0));
        assert_eq!(b.build().num_edges(), 0);
    }

    #[test]
    fn default_builder_is_empty() {
        let b = GraphBuilder::default();
        assert_eq!(b.num_nodes(), 0);
        assert_eq!(b.build().num_nodes(), 0);
    }
}
