//! Exact t-SNE (van der Maaten & Hinton, JMLR 2008).
//!
//! The paper uses t-SNE to visualise anchor-node embeddings before and after
//! alignment (Fig. 11).  This is the exact O(n²) formulation — entirely
//! adequate for the few hundred sampled nodes the figure uses — with the
//! standard tricks: per-point bandwidths found by binary search on the target
//! perplexity, early exaggeration, momentum gradient descent, and PCA
//! initialisation for determinism.

use crate::pca::pca_project;
use htc_linalg::DenseMatrix;

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f64,
    /// Number of gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub early_exaggeration: f64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 400,
            learning_rate: 100.0,
            momentum: 0.8,
            early_exaggeration: 4.0,
        }
    }
}

/// Embeds the rows of `data` into 2-D with t-SNE, returning an `n × 2` matrix.
pub fn tsne(data: &DenseMatrix, config: &TsneConfig) -> DenseMatrix {
    let n = data.rows();
    if n == 0 {
        return DenseMatrix::zeros(0, 2);
    }
    if n == 1 {
        return DenseMatrix::zeros(1, 2);
    }
    let p = joint_probabilities(data, config.perplexity);

    // PCA initialisation, scaled down as is conventional.
    let mut y = pca_project(data, 2).scale(1e-2);
    let mut velocity = DenseMatrix::zeros(n, 2);

    let exaggeration_end = config.iterations / 4;
    for iter in 0..config.iterations {
        let exaggeration = if iter < exaggeration_end {
            config.early_exaggeration
        } else {
            1.0
        };
        let (q, num) = low_dim_affinities(&y);
        // Gradient: 4 Σ_j (p_ij·ex − q_ij) num_ij (y_i − y_j).
        let mut grad = DenseMatrix::zeros(n, 2);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let coeff = 4.0 * (exaggeration * p.get(i, j) - q.get(i, j)) * num.get(i, j);
                for d in 0..2 {
                    grad.add_at(i, d, coeff * (y.get(i, d) - y.get(j, d)));
                }
            }
        }
        for i in 0..n {
            for d in 0..2 {
                let v =
                    config.momentum * velocity.get(i, d) - config.learning_rate * grad.get(i, d);
                velocity.set(i, d, v);
                y.add_at(i, d, v);
            }
        }
        // Re-centre to keep the embedding bounded.
        for d in 0..2 {
            let mean: f64 = (0..n).map(|i| y.get(i, d)).sum::<f64>() / n as f64;
            for i in 0..n {
                y.add_at(i, d, -mean);
            }
        }
    }
    y
}

/// Symmetrised high-dimensional joint probabilities with per-point bandwidth
/// chosen by binary search on the perplexity.
fn joint_probabilities(data: &DenseMatrix, perplexity: f64) -> DenseMatrix {
    let n = data.rows();
    let target_entropy = perplexity.max(2.0).ln();
    // Pairwise squared distances.
    let mut dist = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f64 = data
                .row(i)
                .iter()
                .zip(data.row(j))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            dist.set(i, j, d);
            dist.set(j, i, d);
        }
    }
    let mut p = DenseMatrix::zeros(n, n);
    for i in 0..n {
        let (mut beta, mut beta_min, mut beta_max) = (1.0_f64, 0.0_f64, f64::INFINITY);
        let mut row = vec![0.0; n];
        for _ in 0..50 {
            let mut sum = 0.0;
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = if i == j {
                    0.0
                } else {
                    (-beta * dist.get(i, j)).exp()
                };
                sum += *slot;
            }
            if sum < 1e-300 {
                sum = 1e-300;
            }
            let mut entropy = 0.0;
            for &v in &row {
                let q = v / sum;
                if q > 1e-12 {
                    entropy -= q * q.ln();
                }
            }
            if (entropy - target_entropy).abs() < 1e-4 {
                break;
            }
            if entropy > target_entropy {
                beta_min = beta;
                beta = if beta_max.is_finite() {
                    (beta + beta_max) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_max = beta;
                beta = (beta + beta_min) / 2.0;
            }
        }
        let sum: f64 = row.iter().sum::<f64>().max(1e-300);
        for (j, &v) in row.iter().enumerate() {
            p.set(i, j, v / sum);
        }
    }
    // Symmetrise and normalise.
    let mut joint = DenseMatrix::zeros(n, n);
    let norm = 2.0 * n as f64;
    for i in 0..n {
        for j in 0..n {
            let v = ((p.get(i, j) + p.get(j, i)) / norm).max(1e-12);
            if i != j {
                joint.set(i, j, v);
            }
        }
    }
    joint
}

/// Student-t low-dimensional affinities `q_ij` and the unnormalised kernel.
fn low_dim_affinities(y: &DenseMatrix) -> (DenseMatrix, DenseMatrix) {
    let n = y.rows();
    let mut num = DenseMatrix::zeros(n, n);
    let mut total = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f64 = y
                .row(i)
                .iter()
                .zip(y.row(j))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            let k = 1.0 / (1.0 + d);
            num.set(i, j, k);
            num.set(j, i, k);
            total += 2.0 * k;
        }
    }
    let total = total.max(1e-300);
    let q = num.map(|v| (v / total).max(1e-12));
    (q, num)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs should stay separated in 2-D.
    #[test]
    fn preserves_cluster_structure() {
        let mut rows = Vec::new();
        for i in 0..30 {
            let jitter = (i % 7) as f64 * 0.01;
            rows.push(vec![0.0 + jitter, 0.0, jitter]);
        }
        for i in 0..30 {
            let jitter = (i % 7) as f64 * 0.01;
            rows.push(vec![10.0 + jitter, 10.0, jitter]);
        }
        let data = DenseMatrix::from_rows(&rows).unwrap();
        let config = TsneConfig {
            iterations: 250,
            perplexity: 10.0,
            ..TsneConfig::default()
        };
        let y = tsne(&data, &config);
        assert_eq!(y.shape(), (60, 2));
        // Mean intra-cluster distance must be much smaller than the
        // inter-cluster centroid distance.
        let centroid = |range: std::ops::Range<usize>| -> (f64, f64) {
            let mut cx = 0.0;
            let mut cy = 0.0;
            for i in range.clone() {
                cx += y.get(i, 0);
                cy += y.get(i, 1);
            }
            (cx / range.len() as f64, cy / range.len() as f64)
        };
        let (ax, ay) = centroid(0..30);
        let (bx, by) = centroid(30..60);
        let between = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        let mut within = 0.0;
        for i in 0..30 {
            within += ((y.get(i, 0) - ax).powi(2) + (y.get(i, 1) - ay).powi(2)).sqrt();
        }
        within /= 30.0;
        assert!(
            between > 2.0 * within,
            "between {between} should exceed twice within {within}"
        );
    }

    #[test]
    fn joint_probabilities_are_a_distribution() {
        let data = DenseMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
        ])
        .unwrap();
        let p = joint_probabilities(&data, 2.0);
        let total = p.sum();
        assert!((total - 1.0).abs() < 0.05, "total {total}");
        for i in 0..4 {
            assert_eq!(p.get(i, i), 0.0);
        }
    }

    #[test]
    fn output_is_centred() {
        let data = DenseMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 2.0],
            vec![3.0, 1.0],
            vec![4.0, 4.0],
            vec![2.0, 3.0],
        ])
        .unwrap();
        let y = tsne(
            &data,
            &TsneConfig {
                iterations: 50,
                ..TsneConfig::default()
            },
        );
        for d in 0..2 {
            let mean: f64 = (0..5).map(|i| y.get(i, d)).sum::<f64>() / 5.0;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(
            tsne(&DenseMatrix::zeros(0, 3), &TsneConfig::default()).shape(),
            (0, 2)
        );
        assert_eq!(
            tsne(&DenseMatrix::zeros(1, 3), &TsneConfig::default()).shape(),
            (1, 2)
        );
    }

    #[test]
    fn deterministic() {
        let data = DenseMatrix::from_rows(&[
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![2.0, 2.0],
            vec![3.0, 0.5],
        ])
        .unwrap();
        let cfg = TsneConfig {
            iterations: 40,
            ..TsneConfig::default()
        };
        let a = tsne(&data, &cfg);
        let b = tsne(&data, &cfg);
        assert!(a.approx_eq(&b, 0.0));
    }
}
