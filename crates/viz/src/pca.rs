//! Principal component analysis by power iteration with deflation.

use htc_linalg::DenseMatrix;

/// Projects the rows of `data` onto their top `components` principal
/// components.
///
/// The covariance matrix is never materialised for tall inputs; instead the
/// power iteration works on the `d × d` Gram matrix of the centred data,
/// which matches the sizes used in this workspace (`d ≤ a few hundred`).
pub fn pca_project(data: &DenseMatrix, components: usize) -> DenseMatrix {
    let (n, d) = data.shape();
    if n == 0 || d == 0 || components == 0 {
        return DenseMatrix::zeros(n, components);
    }
    // Centre the columns.
    let mut centered = data.clone();
    for c in 0..d {
        let mean: f64 = (0..n).map(|r| data.get(r, c)).sum::<f64>() / n as f64;
        for r in 0..n {
            centered.add_at(r, c, -mean);
        }
    }
    // d × d covariance (up to the 1/(n-1) factor, irrelevant for directions).
    let mut cov = centered.gram();
    let k = components.min(d);
    let mut projection = DenseMatrix::zeros(d, k);
    for comp in 0..k {
        let direction = dominant_eigenvector(&cov, 200);
        let eigenvalue = rayleigh_quotient(&cov, &direction);
        for (r, &v) in direction.iter().enumerate() {
            projection.set(r, comp, v);
        }
        // Deflate: cov ← cov − λ v vᵀ.
        for i in 0..d {
            for j in 0..d {
                cov.add_at(i, j, -eigenvalue * direction[i] * direction[j]);
            }
        }
    }
    let mut out = centered
        .matmul(&projection)
        .expect("projection has d rows by construction");
    if k < components {
        out = pad_columns(&out, components);
    }
    out
}

fn dominant_eigenvector(matrix: &DenseMatrix, iterations: usize) -> Vec<f64> {
    let d = matrix.rows();
    // Deterministic start vector that is unlikely to be orthogonal to the
    // dominant eigenvector.
    let mut v: Vec<f64> = (0..d).map(|i| 1.0 + (i as f64) * 1e-3).collect();
    normalize(&mut v);
    for _ in 0..iterations {
        let mut next = vec![0.0; d];
        for (i, slot) in next.iter_mut().enumerate() {
            let row = matrix.row(i);
            *slot = row.iter().zip(&v).map(|(a, b)| a * b).sum();
        }
        if normalize(&mut next) < 1e-14 {
            return v;
        }
        v = next;
    }
    v
}

fn rayleigh_quotient(matrix: &DenseMatrix, v: &[f64]) -> f64 {
    let d = matrix.rows();
    let mut mv = vec![0.0; d];
    for (i, slot) in mv.iter_mut().enumerate() {
        *slot = matrix.row(i).iter().zip(v).map(|(a, b)| a * b).sum();
    }
    v.iter().zip(&mv).map(|(a, b)| a * b).sum()
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-14 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

fn pad_columns(m: &DenseMatrix, cols: usize) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(m.rows(), cols);
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            out.set(r, c, m.get(r, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_direction() {
        // Points spread along the (1, 1) diagonal with small orthogonal noise.
        let mut rows = Vec::new();
        for i in 0..50 {
            let t = i as f64 / 10.0;
            let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
            rows.push(vec![t + noise, t - noise]);
        }
        let data = DenseMatrix::from_rows(&rows).unwrap();
        let projected = pca_project(&data, 1);
        assert_eq!(projected.shape(), (50, 1));
        // Variance captured by PC1 should dominate the (centred) variance of
        // either raw coordinate, since the points lie along the diagonal.
        let var_pc1: f64 = projected.column(0).iter().map(|v| v * v).sum();
        let col = data.column(0);
        let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
        let var_x: f64 = col.iter().map(|v| (v - mean) * (v - mean)).sum();
        assert!(var_pc1 > 1.5 * var_x, "pc1 {var_pc1} vs x {var_x}");
    }

    #[test]
    fn output_shape_is_n_by_k() {
        let data = DenseMatrix::filled(10, 4, 1.0);
        let p = pca_project(&data, 2);
        assert_eq!(p.shape(), (10, 2));
        // Constant data centres to zero.
        assert!(p.max_abs() < 1e-9);
    }

    #[test]
    fn more_components_than_dims_are_padded() {
        let data = DenseMatrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]).unwrap();
        let p = pca_project(&data, 3);
        assert_eq!(p.shape(), (3, 3));
        assert_eq!(p.column(2), vec![0.0; 3]);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pca_project(&DenseMatrix::zeros(0, 3), 2).shape(), (0, 2));
        assert_eq!(pca_project(&DenseMatrix::zeros(4, 2), 0).shape(), (4, 0));
    }
}
