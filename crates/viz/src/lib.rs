//! # htc-viz
//!
//! Visualisation substrate for the embedding figures of the paper:
//!
//! * [`pca`] — principal component analysis via power iteration (used to
//!   initialise t-SNE and as a fast 2-D projection on its own);
//! * [`tsne`] — an exact (O(n²)) t-SNE implementation (van der Maaten &
//!   Hinton, 2008) used to regenerate Fig. 11, the before/after visualisation
//!   of anchor-node embeddings.
//!
//! Both produce plain `(x, y)` coordinates; the benchmark harness writes them
//! as TSV so any plotting tool can render them.

pub mod pca;
pub mod tsne;

pub use pca::pca_project;
pub use tsne::{tsne, TsneConfig};
