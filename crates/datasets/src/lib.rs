//! # htc-datasets
//!
//! Synthetic analogues of the evaluation datasets used by the HTC paper.
//!
//! The paper evaluates on three real-world pairs (Allmovie & Imdb, Douban
//! Online & Offline, Flickr & Myspace) and two synthetic pairs (Econ, BN)
//! whose raw data cannot be redistributed here.  The generators in this crate
//! reproduce the *statistical profile* of each pair reported in Table I —
//! node counts, edge counts, attribute dimensionality, average degree — and
//! the construction protocol of the paper's synthetic experiments (the target
//! network is the source network with a fraction of edges removed, node
//! identity preserved through a hidden permutation).
//!
//! Every generated [`DatasetPair`] carries its ground-truth anchor links, so
//! the full evaluation pipeline (Table II, Table III, Fig. 6–11) runs
//! end-to-end on these analogues.  Absolute precision values naturally differ
//! from the paper; the comparisons between methods are what the benchmark
//! harness reproduces.
//!
//! * [`config`] — generation parameters and per-dataset presets at two scales
//!   (`Small` for laptop-budget runs, `Paper` matching the published sizes);
//! * [`generate`] — the pair generator;
//! * [`stats`] — Table I-style statistics.

pub mod config;
pub mod generate;
pub mod stats;

pub use config::{DatasetPreset, GraphModel, Scale, SyntheticPairConfig};
pub use generate::{generate_pair, DatasetPair};
pub use stats::{pair_statistics, NetworkStats};
