//! Source/target pair generation.
//!
//! The protocol mirrors the paper's synthetic-dataset construction
//! (Section V-A): the target network is derived from the source network by
//! removing a fraction of edges and perturbing attributes, node identity is
//! preserved through a hidden random permutation, and the permutation becomes
//! the ground truth.  Target-only "extra" nodes (no source counterpart) and a
//! partial anchor fraction model the harder real-world pairs.

use crate::config::{GraphModel, SyntheticPairConfig};
use htc_graph::generators::{
    barabasi_albert, erdos_renyi_gnm, planted_partition, random_permutation, seeded_rng,
    watts_strogatz,
};
use htc_graph::perturb::{permute_network, perturb_attributes_flip, remove_edges, GroundTruth};
use htc_graph::{AttributedNetwork, Graph, GraphBuilder};
use htc_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::Rng;

/// A generated source/target pair with ground-truth anchor links.
#[derive(Debug, Clone)]
pub struct DatasetPair {
    /// Human-readable name of the pair.
    pub name: String,
    /// The source attributed network `G_s`.
    pub source: AttributedNetwork,
    /// The target attributed network `G_t`.
    pub target: AttributedNetwork,
    /// Ground-truth anchor links (source node → target node).
    pub ground_truth: GroundTruth,
}

impl DatasetPair {
    /// Number of ground-truth anchor links.
    pub fn num_anchors(&self) -> usize {
        self.ground_truth.num_anchors()
    }
}

/// Generates a source/target pair from a configuration.
pub fn generate_pair(config: &SyntheticPairConfig) -> DatasetPair {
    let mut rng = seeded_rng(config.seed);

    // 1. Source topology.
    let (source_graph, communities) = build_source_graph(config, &mut rng);

    // 2. Source attributes, correlated with the community structure so that
    //    attribute consistency carries alignment signal (as in the paper's
    //    attributed datasets).
    let source_attrs = community_attributes(
        source_graph.num_nodes(),
        config.attr_dim,
        &communities,
        &mut rng,
    );
    let source = AttributedNetwork::new(source_graph, source_attrs)
        .expect("attribute rows match node count by construction");

    // 3. Target = structural noise + attribute noise + hidden permutation
    //    (+ optional extra nodes).
    let noisy_graph = remove_edges(source.graph(), config.edge_removal, &mut rng);
    let noisy_attrs = perturb_attributes_flip(source.attributes(), config.attr_flip, &mut rng);
    let noisy = AttributedNetwork::new(noisy_graph, noisy_attrs)
        .expect("perturbation preserves the node count");

    let perm = random_permutation(source.num_nodes(), &mut rng);
    let permuted = permute_network(&noisy, &perm);

    let target = if config.extra_target_nodes > 0 {
        append_extra_nodes(&permuted, config.extra_target_nodes, &mut rng)
    } else {
        permuted
    };

    // 4. Ground truth = the permutation, optionally restricted to a fraction
    //    of the nodes (partially known anchors, as in Flickr & Myspace).
    let full_gt = GroundTruth::from_permutation(&perm);
    let ground_truth = if config.anchor_fraction < 1.0 {
        full_gt.sample_fraction(config.anchor_fraction, &mut rng)
    } else {
        full_gt
    };

    DatasetPair {
        name: config.name.clone(),
        source,
        target,
        ground_truth,
    }
}

fn build_source_graph(config: &SyntheticPairConfig, rng: &mut StdRng) -> (Graph, Vec<usize>) {
    let n = config.num_nodes;
    match config.model {
        GraphModel::ErdosRenyi { edges } => {
            let g = erdos_renyi_gnm(n, edges, rng);
            (g, vec![0; n])
        }
        GraphModel::BarabasiAlbert { attach } => {
            let g = barabasi_albert(n, attach, rng);
            // Use degree buckets as pseudo-communities for attribute prototypes.
            let labels = g.degrees().iter().map(|&d| (d.min(15)) / 4).collect();
            (g, labels)
        }
        GraphModel::WattsStrogatz { k, beta } => {
            let g = watts_strogatz(n, k, beta, rng);
            // Spatial blocks along the ring act as communities.
            let labels = (0..n).map(|u| u * 8 / n.max(1)).collect();
            (g, labels)
        }
        GraphModel::PlantedPartition {
            communities,
            p_in,
            p_out,
        } => planted_partition(n, communities, p_in, p_out, rng),
    }
}

/// Binary attributes drawn from per-community prototypes with 10 % noise.
fn community_attributes(
    n: usize,
    dim: usize,
    communities: &[usize],
    rng: &mut StdRng,
) -> DenseMatrix {
    let num_communities = communities.iter().copied().max().unwrap_or(0) + 1;
    // One random binary prototype per community.
    let prototypes: Vec<Vec<f64>> = (0..num_communities)
        .map(|_| {
            (0..dim)
                .map(|_| if rng.gen::<f64>() < 0.5 { 1.0 } else { 0.0 })
                .collect()
        })
        .collect();
    let mut data = Vec::with_capacity(n * dim);
    for u in 0..n {
        let proto = &prototypes[communities[u]];
        for &bit in proto {
            let flip = rng.gen::<f64>() < 0.1;
            data.push(if flip { 1.0 - bit } else { bit });
        }
    }
    DenseMatrix::from_vec(n, dim, data).expect("dimensions are consistent")
}

/// Appends `extra` target-only nodes, wired to random existing nodes with one
/// or two edges each and given random attributes.
fn append_extra_nodes(
    network: &AttributedNetwork,
    extra: usize,
    rng: &mut StdRng,
) -> AttributedNetwork {
    let old_n = network.num_nodes();
    let new_n = old_n + extra;
    let dim = network.attr_dim();

    let mut builder = GraphBuilder::new(new_n);
    builder
        .add_edges(network.graph().edges().iter().copied())
        .expect("existing edges stay valid in the larger graph");
    for v in old_n..new_n {
        let edges = 1 + rng.gen_range(0..2usize);
        for _ in 0..edges {
            let mut guard = 0;
            loop {
                guard += 1;
                let u = rng.gen_range(0..v);
                if builder.add_edge(u, v).unwrap_or(false) || guard > 20 {
                    break;
                }
            }
        }
    }

    let mut data = Vec::with_capacity(new_n * dim);
    data.extend_from_slice(network.attributes().data());
    for _ in old_n..new_n {
        for _ in 0..dim {
            data.push(if rng.gen::<f64>() < 0.5 { 1.0 } else { 0.0 });
        }
    }
    let attributes = DenseMatrix::from_vec(new_n, dim, data).expect("dimensions are consistent");
    AttributedNetwork::new(builder.build(), attributes).expect("row count matches node count")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetPreset, Scale};

    #[test]
    fn tiny_pair_has_expected_shape() {
        let pair = generate_pair(&SyntheticPairConfig::tiny(10));
        assert_eq!(pair.source.num_nodes(), 10);
        assert_eq!(pair.target.num_nodes(), 10);
        assert_eq!(pair.num_anchors(), 10);
        assert_eq!(pair.source.attr_dim(), pair.target.attr_dim());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticPairConfig::tiny(12);
        let a = generate_pair(&cfg);
        let b = generate_pair(&cfg);
        assert_eq!(a.source.graph(), b.source.graph());
        assert_eq!(a.target.graph(), b.target.graph());
        assert_eq!(a.ground_truth, b.ground_truth);
        assert!(a.source.attributes().approx_eq(b.source.attributes(), 0.0));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_pair(&SyntheticPairConfig::tiny(12));
        let b = generate_pair(&SyntheticPairConfig::tiny(12).with_seed(1234));
        assert_ne!(a.source.graph(), b.source.graph());
    }

    #[test]
    fn ground_truth_respects_structure_and_attributes() {
        // With no noise at all, anchored nodes have identical attributes and
        // every target edge maps back to a source edge.
        let cfg = SyntheticPairConfig {
            edge_removal: 0.0,
            attr_flip: 0.0,
            ..SyntheticPairConfig::tiny(15)
        };
        let pair = generate_pair(&cfg);
        for (s, t) in pair.ground_truth.anchors() {
            assert_eq!(
                pair.source.node_attributes(s),
                pair.target.node_attributes(t),
                "attribute consistency violated for anchor ({s},{t})"
            );
        }
        // Edge consistency: (u,v) in source implies (perm(u),perm(v)) in target.
        for &(u, v) in pair.source.graph().edges() {
            let tu = pair.ground_truth.target_of(u).unwrap();
            let tv = pair.ground_truth.target_of(v).unwrap();
            assert!(pair.target.graph().has_edge(tu, tv));
        }
    }

    #[test]
    fn edge_removal_shrinks_target() {
        let cfg = SyntheticPairConfig::tiny(30).with_edge_removal(0.5);
        let pair = generate_pair(&cfg);
        assert!(pair.target.num_edges() < pair.source.num_edges());
        let expected = (0.5 * pair.source.num_edges() as f64).round() as usize;
        assert!((pair.target.num_edges() as i64 - expected as i64).abs() <= 1);
    }

    #[test]
    fn extra_target_nodes_are_appended() {
        let cfg = SyntheticPairConfig {
            extra_target_nodes: 20,
            ..SyntheticPairConfig::tiny(25)
        };
        let pair = generate_pair(&cfg);
        assert_eq!(pair.target.num_nodes(), 45);
        assert_eq!(pair.source.num_nodes(), 25);
        // Ground-truth anchors always point at original (permuted) nodes.
        for (_, t) in pair.ground_truth.anchors() {
            assert!(t < 25);
        }
    }

    #[test]
    fn anchor_fraction_limits_ground_truth() {
        let cfg = SyntheticPairConfig {
            anchor_fraction: 0.2,
            ..SyntheticPairConfig::tiny(50)
        };
        let pair = generate_pair(&cfg);
        assert_eq!(pair.num_anchors(), 10);
    }

    #[test]
    fn small_presets_generate_reasonable_sizes() {
        for preset in DatasetPreset::real_world() {
            let cfg = preset.config(Scale::Small);
            let pair = generate_pair(&cfg);
            assert_eq!(pair.name, preset.name());
            assert!(pair.source.num_edges() > pair.source.num_nodes() / 2);
            assert!(pair.num_anchors() > 20, "{}", preset.name());
            // Average degree sanity: Allmovie analogue should be the densest.
            if preset == DatasetPreset::AllmovieImdb {
                assert!(pair.source.graph().average_degree() > 8.0);
            }
        }
    }

    #[test]
    fn robustness_presets_scale_with_noise() {
        let low = generate_pair(&SyntheticPairConfig::econ(Scale::Small, 0.1));
        let high = generate_pair(&SyntheticPairConfig::econ(Scale::Small, 0.5));
        assert!(high.target.num_edges() < low.target.num_edges());
    }
}
