//! Dataset generation parameters and presets.

/// Random-graph model used for the source network of a synthetic pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphModel {
    /// Erdős–Rényi G(n, m) with the given number of edges.
    ErdosRenyi {
        /// Number of edges.
        edges: usize,
    },
    /// Barabási–Albert preferential attachment with the given number of edges
    /// added per new node (heavy-tailed degree distributions, social-network
    /// like).
    BarabasiAlbert {
        /// Edges attached per new node.
        attach: usize,
    },
    /// Watts–Strogatz small-world model (high clustering, brain-network like).
    WattsStrogatz {
        /// Ring-lattice neighbours per node.
        k: usize,
        /// Rewiring probability.
        beta: f64,
    },
    /// Planted-partition / stochastic block model (community structure,
    /// co-actor and organisational networks).
    PlantedPartition {
        /// Number of equally sized communities.
        communities: usize,
        /// Intra-community edge probability.
        p_in: f64,
        /// Inter-community edge probability.
        p_out: f64,
    },
}

/// Evaluation scale.
///
/// `Small` shrinks every dataset so that the complete benchmark suite runs on
/// a laptop-class CPU budget; `Paper` matches the node/edge counts of Table I;
/// `Large` targets the 100k-node tier exercised by the blocked top-k pipeline
/// (named presets keep their Table I sizes — the tier only changes the
/// dedicated [`SyntheticPairConfig::large_pair`] generator and the pipeline
/// configuration the harness selects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Reduced sizes (default for the harness binaries and tests).
    #[default]
    Small,
    /// The sizes reported in Table I of the paper.
    Paper,
    /// The 100k-node tier driven by blocked top-k similarity and mini-batch
    /// training.
    Large,
}

impl Scale {
    /// Parses a scale name (`"small"` / `"paper"` / `"large"`), used by the
    /// harness CLIs.
    pub fn parse(name: &str) -> Option<Scale> {
        match name.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "paper" | "full" => Some(Scale::Paper),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }
}

/// The named dataset pairs of the paper's evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetPreset {
    /// Allmovie & Imdb — dense co-actor movie networks with 14 attributes.
    AllmovieImdb,
    /// Douban Online & Offline — Chinese social networks, sparse, hundreds of
    /// attributes.
    Douban,
    /// Flickr & Myspace — extremely sparse, 3 attributes, weak consistency
    /// (the hard case of Table II).
    FlickrMyspace,
    /// Econ — organisational/contract network used for the robustness test.
    Econ,
    /// BN — brain-voxel network used for the robustness test.
    Bn,
}

impl DatasetPreset {
    /// All presets in the order they appear in the paper.
    pub fn all() -> [DatasetPreset; 5] {
        [
            DatasetPreset::AllmovieImdb,
            DatasetPreset::Douban,
            DatasetPreset::FlickrMyspace,
            DatasetPreset::Econ,
            DatasetPreset::Bn,
        ]
    }

    /// The three "real-world" pairs used in Table II.
    pub fn real_world() -> [DatasetPreset; 3] {
        [
            DatasetPreset::AllmovieImdb,
            DatasetPreset::Douban,
            DatasetPreset::FlickrMyspace,
        ]
    }

    /// Human-readable pair name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetPreset::AllmovieImdb => "Allmovie & Imdb",
            DatasetPreset::Douban => "Douban Online & Offline",
            DatasetPreset::FlickrMyspace => "Flickr & Myspace",
            DatasetPreset::Econ => "Econ",
            DatasetPreset::Bn => "BN",
        }
    }

    /// The generation config for this preset at the given scale.
    pub fn config(self, scale: Scale) -> SyntheticPairConfig {
        match self {
            DatasetPreset::AllmovieImdb => SyntheticPairConfig::allmovie_imdb(scale),
            DatasetPreset::Douban => SyntheticPairConfig::douban(scale),
            DatasetPreset::FlickrMyspace => SyntheticPairConfig::flickr_myspace(scale),
            DatasetPreset::Econ => SyntheticPairConfig::econ(scale, 0.2),
            DatasetPreset::Bn => SyntheticPairConfig::bn(scale, 0.2),
        }
    }
}

/// Full parameter set for generating one source/target pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticPairConfig {
    /// Human-readable name (shows up in harness output).
    pub name: String,
    /// Number of nodes of the source network.
    pub num_nodes: usize,
    /// Source-network random-graph model.
    pub model: GraphModel,
    /// Attribute dimensionality.
    pub attr_dim: usize,
    /// Fraction of source edges removed when deriving the target network
    /// (structural noise, the paper's synthetic-protocol parameter).
    pub edge_removal: f64,
    /// Probability of flipping each binary attribute entry in the target
    /// network (attribute-consistency violation).
    pub attr_flip: f64,
    /// Number of extra target-only nodes with no source counterpart (models
    /// the size mismatch of e.g. Flickr & Myspace).
    pub extra_target_nodes: usize,
    /// Fraction of source nodes that appear in the ground truth (1.0 = every
    /// node has a known anchor).
    pub anchor_fraction: f64,
    /// RNG seed; every derived quantity is deterministic given this seed.
    pub seed: u64,
}

impl SyntheticPairConfig {
    /// A very small pair for doctests and unit tests (`n` nodes).
    pub fn tiny(n: usize) -> Self {
        Self {
            name: format!("tiny-{n}"),
            num_nodes: n.max(4),
            model: GraphModel::ErdosRenyi { edges: 3 * n },
            attr_dim: 4,
            edge_removal: 0.1,
            attr_flip: 0.0,
            extra_target_nodes: 0,
            anchor_fraction: 1.0,
            seed: 7,
        }
    }

    /// Synthetic analogue of Allmovie & Imdb (dense co-actor networks,
    /// 14 attributes, average degree ≈ 41 at paper scale).
    pub fn allmovie_imdb(scale: Scale) -> Self {
        let (n, attach) = match scale {
            Scale::Small => (700, 10),
            Scale::Paper | Scale::Large => (6011, 21),
        };
        Self {
            name: "Allmovie & Imdb".into(),
            num_nodes: n,
            model: GraphModel::PlantedPartition {
                communities: 20,
                p_in: 2.0 * attach as f64 / (n as f64 / 20.0),
                p_out: 0.2 * attach as f64 / n as f64,
            },
            attr_dim: 14,
            edge_removal: 0.20,
            attr_flip: 0.05,
            extra_target_nodes: 0,
            anchor_fraction: 0.9,
            seed: 101,
        }
    }

    /// Synthetic analogue of Douban Online & Offline (sparse social networks
    /// with a large attribute space).
    pub fn douban(scale: Scale) -> Self {
        let (n, attach, attrs) = match scale {
            Scale::Small => (800, 2, 64),
            Scale::Paper | Scale::Large => (3906, 2, 538),
        };
        Self {
            name: "Douban Online & Offline".into(),
            num_nodes: n,
            model: GraphModel::BarabasiAlbert { attach },
            attr_dim: attrs,
            edge_removal: 0.35,
            attr_flip: 0.05,
            extra_target_nodes: 0,
            anchor_fraction: 0.6,
            seed: 202,
        }
    }

    /// Synthetic analogue of Flickr & Myspace (extremely sparse, 3 attributes,
    /// strong consistency violation — the hard case).
    pub fn flickr_myspace(scale: Scale) -> Self {
        let (n, extra) = match scale {
            Scale::Small => (900, 350),
            Scale::Paper | Scale::Large => (6714, 4019),
        };
        Self {
            name: "Flickr & Myspace".into(),
            num_nodes: n,
            model: GraphModel::BarabasiAlbert { attach: 1 },
            attr_dim: 3,
            edge_removal: 0.5,
            attr_flip: 0.25,
            extra_target_nodes: extra,
            anchor_fraction: 0.05,
            seed: 303,
        }
    }

    /// Synthetic analogue of the Econ robustness dataset with a configurable
    /// edge-removal ratio (the x-axis of Fig. 9a).
    pub fn econ(scale: Scale, edge_removal: f64) -> Self {
        let n = match scale {
            Scale::Small => 500,
            Scale::Paper | Scale::Large => 1258,
        };
        Self {
            name: "Econ".into(),
            num_nodes: n,
            model: GraphModel::PlantedPartition {
                communities: 8,
                p_in: 12.0 / (n as f64 / 8.0),
                p_out: 1.6 / n as f64,
            },
            attr_dim: 20,
            edge_removal,
            attr_flip: 0.0,
            extra_target_nodes: 0,
            anchor_fraction: 1.0,
            seed: 404,
        }
    }

    /// Synthetic analogue of the BN (brain network) robustness dataset with a
    /// configurable edge-removal ratio (the x-axis of Fig. 9b).
    pub fn bn(scale: Scale, edge_removal: f64) -> Self {
        let n = match scale {
            Scale::Small => 600,
            Scale::Paper | Scale::Large => 1781,
        };
        Self {
            name: "BN".into(),
            num_nodes: n,
            model: GraphModel::WattsStrogatz { k: 10, beta: 0.15 },
            attr_dim: 20,
            edge_removal,
            attr_flip: 0.0,
            extra_target_nodes: 0,
            anchor_fraction: 1.0,
            seed: 505,
        }
    }

    /// A large-tier synthetic pair: a seeded Barabási–Albert power-law graph
    /// (attach = 2, average degree ≈ 4 — the regime of the paper's social
    /// networks) with a small attribute space, sized directly by `num_nodes`.
    /// This is the generator behind the `large_scale` benchmark scenario and
    /// the CI `large-smoke` job; it is the only preset whose node count is a
    /// free parameter.
    pub fn large_pair(num_nodes: usize, seed: u64) -> Self {
        Self {
            name: format!("large-{num_nodes}"),
            num_nodes: num_nodes.max(16),
            model: GraphModel::BarabasiAlbert { attach: 2 },
            attr_dim: 16,
            edge_removal: 0.10,
            attr_flip: 0.02,
            extra_target_nodes: 0,
            anchor_fraction: 0.2,
            seed,
        }
    }

    /// Returns a copy with a different seed (used to average over runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different edge-removal ratio (used for Fig. 9).
    pub fn with_edge_removal(mut self, ratio: f64) -> Self {
        self.edge_removal = ratio;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::default(), Scale::Small);
    }

    #[test]
    fn large_scale_keeps_preset_sizes_and_large_pair_scales_freely() {
        for preset in DatasetPreset::all() {
            assert_eq!(
                preset.config(Scale::Large).num_nodes,
                preset.config(Scale::Paper).num_nodes,
                "{}",
                preset.name()
            );
        }
        let cfg = SyntheticPairConfig::large_pair(100_000, 42);
        assert_eq!(cfg.num_nodes, 100_000);
        assert_eq!(cfg.model, GraphModel::BarabasiAlbert { attach: 2 });
        assert_eq!(cfg.seed, 42);
        // Deterministic and floor-clamped.
        assert_eq!(cfg, SyntheticPairConfig::large_pair(100_000, 42));
        assert_eq!(SyntheticPairConfig::large_pair(1, 0).num_nodes, 16);
    }

    #[test]
    fn presets_cover_paper_datasets() {
        assert_eq!(DatasetPreset::all().len(), 5);
        assert_eq!(DatasetPreset::real_world().len(), 3);
        for preset in DatasetPreset::all() {
            let cfg = preset.config(Scale::Small);
            assert!(cfg.num_nodes >= 100, "{}", preset.name());
            assert!(cfg.attr_dim >= 3);
            assert!((0.0..1.0).contains(&cfg.edge_removal));
        }
    }

    #[test]
    fn paper_scale_matches_table1_sizes() {
        assert_eq!(
            SyntheticPairConfig::allmovie_imdb(Scale::Paper).num_nodes,
            6011
        );
        assert_eq!(SyntheticPairConfig::douban(Scale::Paper).num_nodes, 3906);
        assert_eq!(SyntheticPairConfig::douban(Scale::Paper).attr_dim, 538);
        assert_eq!(
            SyntheticPairConfig::flickr_myspace(Scale::Paper).num_nodes,
            6714
        );
        assert_eq!(SyntheticPairConfig::econ(Scale::Paper, 0.1).num_nodes, 1258);
        assert_eq!(SyntheticPairConfig::bn(Scale::Paper, 0.1).num_nodes, 1781);
    }

    #[test]
    fn tiny_is_small_and_deterministic() {
        let a = SyntheticPairConfig::tiny(8);
        let b = SyntheticPairConfig::tiny(8);
        assert_eq!(a, b);
        assert!(a.num_nodes <= 10);
    }

    #[test]
    fn builder_style_modifiers() {
        let cfg = SyntheticPairConfig::econ(Scale::Small, 0.1)
            .with_seed(99)
            .with_edge_removal(0.4);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.edge_removal, 0.4);
    }
}
