//! Network statistics (Table I of the paper).

use crate::generate::DatasetPair;
use htc_graph::AttributedNetwork;

/// Statistics of one network, matching the columns of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Network name (e.g. "Allmovie").
    pub name: String,
    /// Number of undirected edges.
    pub edges: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Attribute dimensionality.
    pub attrs: usize,
    /// Average degree `2e / n`.
    pub avg_degree: f64,
}

impl NetworkStats {
    /// Computes the statistics of one attributed network.
    pub fn of(name: &str, network: &AttributedNetwork) -> Self {
        Self {
            name: name.to_string(),
            edges: network.num_edges(),
            nodes: network.num_nodes(),
            attrs: network.attr_dim(),
            avg_degree: network.graph().average_degree(),
        }
    }

    /// Renders one TSV row (`name edges nodes attrs avg_degree`).
    pub fn tsv_row(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{:.1}",
            self.name, self.edges, self.nodes, self.attrs, self.avg_degree
        )
    }
}

/// Statistics of both sides of a dataset pair plus its anchor count.
pub fn pair_statistics(pair: &DatasetPair) -> (NetworkStats, NetworkStats, usize) {
    let source = NetworkStats::of(&format!("{} (source)", pair.name), &pair.source);
    let target = NetworkStats::of(&format!("{} (target)", pair.name), &pair.target);
    (source, target, pair.num_anchors())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SyntheticPairConfig;
    use crate::generate::generate_pair;

    #[test]
    fn stats_match_network() {
        let pair = generate_pair(&SyntheticPairConfig::tiny(12));
        let (s, t, anchors) = pair_statistics(&pair);
        assert_eq!(s.nodes, 12);
        assert_eq!(t.nodes, 12);
        assert_eq!(s.edges, pair.source.num_edges());
        assert_eq!(s.attrs, 4);
        assert_eq!(anchors, 12);
        assert!((s.avg_degree - 2.0 * s.edges as f64 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn tsv_row_is_tab_separated() {
        let pair = generate_pair(&SyntheticPairConfig::tiny(8));
        let (s, _, _) = pair_statistics(&pair);
        let row = s.tsv_row();
        assert_eq!(row.split('\t').count(), 5);
        assert!(row.contains("tiny-8"));
    }
}
