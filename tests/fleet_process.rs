//! Process-level fleet drills: these tests own the real `htc-fleet` and
//! `htc-serve` binaries (via `CARGO_BIN_EXE_*`, which only the root package
//! gets) and exercise what the in-process tests in
//! `crates/fleet/tests/router_integration.rs` cannot — `SIGKILL`ing a live
//! shard process, supervisor restart with a fresh ephemeral port, and
//! signal-driven drains that must leave no orphan processes behind.
#![cfg(unix)]

use htc::serve::http::Client;
use htc::serve::json::{self, network_spec, Json};
use htc_datasets::{generate_pair, SyntheticPairConfig};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

const SIGTERM: i32 = 15;
const SIGKILL: i32 = 9;

fn send_signal(pid: u32, sig: i32) {
    unsafe {
        kill(pid as i32, sig);
    }
}

/// True while `pid` names a live (or not-yet-reaped) process.
fn pid_alive(pid: u32) -> bool {
    unsafe { kill(pid as i32, 0) == 0 }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htc-fleet-proc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn align_body(seed: u64) -> String {
    let pair = generate_pair(&SyntheticPairConfig::tiny(8).with_seed(seed));
    format!(
        "{{\"preset\":\"fast\",\"epochs\":2,\"source\":{},\"target\":{}}}",
        network_spec(&pair.source),
        network_spec(&pair.target)
    )
}

/// The deterministic slice of an align response (everything except timings
/// and cache provenance).
fn result_payload(body: &str) -> Vec<(String, Json)> {
    let root = json::parse(body).expect("align response parses");
    [
        "anchors",
        "orbit_importance",
        "trusted_counts",
        "loss_final",
    ]
    .iter()
    .map(|key| {
        (
            key.to_string(),
            root.get(key).cloned().unwrap_or(Json::Null),
        )
    })
    .collect()
}

/// A spawned child whose stdout is continuously drained into a shared line
/// buffer, so tests can scrape `listening on` / `shard i pid p` lines both
/// at startup and after a supervisor restart.
struct Scraped {
    child: Child,
    lines: Arc<Mutex<Vec<String>>>,
}

impl Scraped {
    fn spawn(mut command: Command) -> Scraped {
        command.stdout(Stdio::piped()).stderr(Stdio::null());
        let mut child = command.spawn().expect("spawn binary");
        let stdout = child.stdout.take().expect("piped stdout");
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        std::thread::spawn(move || {
            let reader = std::io::BufReader::new(stdout);
            for line in reader.lines() {
                match line {
                    Ok(line) => sink.lock().unwrap().push(line),
                    Err(_) => break,
                }
            }
        });
        Scraped { child, lines }
    }

    /// Block until some stdout line satisfies `pred`, returning it.
    fn wait_for_line<F: Fn(&str) -> bool>(&self, pred: F, timeout: Duration) -> Option<String> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(line) = self.lines.lock().unwrap().iter().find(|l| pred(l)) {
                return Some(line.clone());
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// All `shard <i> pid <p> listening on <addr>` announcements so far, in
    /// order — a restarted shard appends a second entry for the same index.
    fn shard_announcements(&self) -> Vec<(usize, u32)> {
        self.lines
            .lock()
            .unwrap()
            .iter()
            .filter_map(|line| {
                let rest = line.strip_prefix("shard ")?;
                let mut words = rest.split_whitespace();
                let shard: usize = words.next()?.parse().ok()?;
                words.next().filter(|w| *w == "pid")?;
                let pid: u32 = words.next()?.parse().ok()?;
                Some((shard, pid))
            })
            .collect()
    }

    fn wait_for_exit(&mut self, timeout: Duration) -> Option<std::process::ExitStatus> {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if let Ok(Some(status)) = self.child.try_wait() {
                return Some(status);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        None
    }
}

impl Drop for Scraped {
    fn drop(&mut self) {
        // Belt and braces: never leak a fleet past a failed assert.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn parse_listen_addr(line: &str) -> SocketAddr {
    line.rsplit("listening on ")
        .next()
        .and_then(|addr| addr.trim().parse().ok())
        .unwrap_or_else(|| panic!("unparseable listen line: {line:?}"))
}

fn start_fleet(cache_dir: &std::path::Path, shards: usize) -> (Scraped, SocketAddr) {
    let mut command = Command::new(env!("CARGO_BIN_EXE_htc-fleet"));
    command
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--shards")
        .arg(shards.to_string())
        .arg("--cache-dir")
        .arg(cache_dir)
        .arg("--serve-bin")
        .arg(env!("CARGO_BIN_EXE_htc-serve"))
        .arg("--health-interval-ms")
        .arg("50");
    let fleet = Scraped::spawn(command);
    // The router line is printed only after every shard is up, so waiting
    // for it covers the whole fleet. Shard lines start with "shard", the
    // router's with "listening".
    let line = fleet
        .wait_for_line(|l| l.starts_with("listening on "), Duration::from_secs(30))
        .expect("fleet must report its router address");
    let addr = parse_listen_addr(&line);
    (fleet, addr)
}

/// POST the body until a 200 lands (502s are the router's retryable signal
/// while a kill/restart is in flight), returning (shard, cache_hit, payload).
fn align_until_ok(
    addr: SocketAddr,
    body: &str,
    timeout: Duration,
) -> (usize, bool, Vec<(String, Json)>) {
    let deadline = Instant::now() + timeout;
    loop {
        // Fresh connection each try: the previous one may have died with
        // the shard mid-relay.
        let response = Client::connect(addr)
            .ok()
            .and_then(|mut client| client.request("POST", "/align", body).ok());
        if let Some(response) = response {
            if response.status == 200 {
                let shard: usize = response
                    .header("x-htc-shard")
                    .expect("routed responses carry X-HTC-Shard")
                    .parse()
                    .unwrap();
                let root = json::parse(response.body_str()).unwrap();
                let cache_hit = root.get("cache_hit") == Some(&Json::Bool(true));
                return (shard, cache_hit, result_payload(response.body_str()));
            }
            assert_eq!(
                response.status,
                502,
                "only 200 or retryable 502 expected mid-failover, got {}: {}",
                response.status,
                response.body_str()
            );
        }
        assert!(
            Instant::now() < deadline,
            "no successful align within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn sigkill_of_a_shard_is_survived_restarted_and_bit_identical() {
    let cache = tmp_dir("sigkill");
    let (mut fleet, addr) = start_fleet(&cache, 2);
    let initial = fleet.shard_announcements();
    assert_eq!(initial.len(), 2, "both shards announce at startup");

    // Baseline request: lands on its rendezvous owner and spills the
    // artifact into the shared cache dir.
    let body = align_body(81);
    let (owner, _, payload) = align_until_ok(addr, &body, Duration::from_secs(20));

    // SIGKILL the owner's process — no drain, no spill flush, the hard way.
    let owner_pid = initial
        .iter()
        .find(|(shard, _)| *shard == owner)
        .map(|(_, pid)| *pid)
        .expect("owner announced a pid");
    send_signal(owner_pid, SIGKILL);

    // The very next successful answer — whether served by the survivor
    // (failover) or by an already-restarted owner — must be warm from the
    // shared spill and bit-identical to the pre-kill answer.
    let (_, cache_hit, after) = align_until_ok(addr, &body, Duration::from_secs(20));
    assert!(cache_hit, "post-kill answer must warm-start from the spill");
    assert_eq!(after, payload, "post-kill answer must be bit-identical");

    // The supervisor restarts the dead shard (new pid, new ephemeral port)…
    let restarted = fleet
        .wait_for_line(
            |l| {
                l.starts_with(&format!("shard {owner} pid "))
                    && !l.contains(&format!("pid {owner_pid} "))
            },
            Duration::from_secs(20),
        )
        .is_some();
    assert!(restarted, "supervisor must respawn the SIGKILLed shard");

    // …and once it is healthy again, the router routes the fingerprint back
    // to it; the restarted process serves warm from the shared spill.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (shard, cache_hit, after) = align_until_ok(addr, &body, Duration::from_secs(20));
        if shard == owner {
            assert!(cache_hit, "restarted owner must warm-start from the spill");
            assert_eq!(after, payload, "restarted owner must be bit-identical");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router never routed back to the restarted owner"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // Clean drain over HTTP, then: no orphans.
    let mut client = Client::connect(addr).unwrap();
    let ack = client.request("POST", "/shutdown", "").unwrap();
    assert_eq!(ack.status, 200);
    let status = fleet
        .wait_for_exit(Duration::from_secs(15))
        .expect("fleet exits after /shutdown");
    assert!(status.success(), "fleet exit status: {status:?}");
    for (_, pid) in fleet.shard_announcements() {
        assert!(!pid_alive(pid), "shard pid {pid} left orphaned");
    }
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn sigterm_drains_the_whole_fleet_without_orphans() {
    let cache = tmp_dir("sigterm-fleet");
    let (mut fleet, addr) = start_fleet(&cache, 2);
    // Prove the fleet is actually serving before tearing it down.
    let body = align_body(82);
    let _ = align_until_ok(addr, &body, Duration::from_secs(20));

    send_signal(fleet.child.id(), SIGTERM);
    let status = fleet
        .wait_for_exit(Duration::from_secs(15))
        .expect("fleet exits on SIGTERM");
    assert!(status.success(), "fleet exit status: {status:?}");
    for (_, pid) in fleet.shard_announcements() {
        assert!(!pid_alive(pid), "shard pid {pid} left orphaned");
    }
    // The router socket is gone too.
    assert!(Client::connect(addr).is_err(), "router port still open");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn sigterm_drains_a_standalone_htc_serve() {
    let mut command = Command::new(env!("CARGO_BIN_EXE_htc-serve"));
    command.arg("--addr").arg("127.0.0.1:0");
    let mut serve = Scraped::spawn(command);
    let line = serve
        .wait_for_line(|l| l.starts_with("listening on "), Duration::from_secs(15))
        .expect("htc-serve reports its address");
    let addr = parse_listen_addr(&line);

    // In-flight health check proves it is actually up, not just printed.
    let mut client = Client::connect(addr).unwrap();
    let health = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);

    send_signal(serve.child.id(), SIGTERM);
    let status = serve
        .wait_for_exit(Duration::from_secs(15))
        .expect("htc-serve exits on SIGTERM");
    assert!(status.success(), "htc-serve exit status: {status:?}");
    assert!(Client::connect(addr).is_err(), "serve port still open");
}
