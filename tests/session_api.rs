//! Integration tests for the staged `AlignmentSession` API: bit-identity
//! with the monolithic aligner, source-artifact reuse in `align_many`,
//! ablation variants through the session, progress/cancellation, and
//! persistence warm starts.

use htc::core::pipeline::stages;
use htc::core::{
    AlignmentSession, HtcAligner, HtcConfig, HtcError, HtcResult, HtcVariant, ProgressObserver,
    TopologyViews, TrainedEncoder,
};
use htc::datasets::{generate_pair, DatasetPair, SyntheticPairConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

fn tiny_pair(n: usize) -> DatasetPair {
    generate_pair(&SyntheticPairConfig {
        edge_removal: 0.05,
        ..SyntheticPairConfig::tiny(n)
    })
}

fn fast_config() -> HtcConfig {
    let mut config = HtcConfig::fast();
    config.epochs = 10;
    config
}

fn assert_bit_identical(a: &HtcResult, b: &HtcResult) {
    assert!(
        a.alignment().approx_eq(b.alignment(), 0.0),
        "alignment matrices must match bit-for-bit"
    );
    assert_eq!(a.trusted_counts(), b.trusted_counts());
    assert_eq!(a.loss_history(), b.loss_history());
    assert_eq!(a.orbit_importance(), b.orbit_importance());
}

#[test]
fn session_align_is_bit_identical_to_aligner() {
    let pair = tiny_pair(14);
    let config = fast_config();
    let monolithic = HtcAligner::new(config.clone())
        .align(&pair.source, &pair.target)
        .unwrap();
    let mut session = AlignmentSession::new(config, &pair.source).unwrap();
    let staged = session.align(&pair.target).unwrap();
    assert_bit_identical(&monolithic, &staged);
}

#[test]
fn explicit_stage_by_stage_run_matches_monolithic() {
    let pair = tiny_pair(14);
    let config = fast_config();
    let monolithic = HtcAligner::new(config.clone())
        .align(&pair.source, &pair.target)
        .unwrap();

    let mut session = AlignmentSession::new(config.clone(), &pair.source).unwrap();
    let mut staged = session.begin(&pair.target).unwrap();
    // Advance one stage at a time, inspecting each artifact.
    let (sv, tv) = staged.topology_views().unwrap();
    assert_eq!(sv.num_nodes(), pair.source.num_nodes());
    assert_eq!(tv.num_nodes(), pair.target.num_nodes());
    assert!(sv.goms().is_some(), "orbit mode exposes the GOMs");
    let (sp, tp) = staged.propagators().unwrap();
    assert_eq!(sp.num_views(), config.num_views());
    assert_eq!(tp.num_views(), config.num_views());
    let trained = staged.train().unwrap();
    assert_eq!(trained.loss_history().len(), config.epochs);
    let refinements = staged.refine().unwrap();
    assert_eq!(refinements.len(), config.num_views());
    let total: f64 = refinements.importance().iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
    let result = staged.finish().unwrap();

    assert_bit_identical(&monolithic, &result);
    // The staged result accounts all five stages, exactly like the wrapper.
    for stage in [
        stages::ORBIT_COUNTING,
        stages::LAPLACIAN,
        stages::TRAINING,
        stages::FINE_TUNING,
        stages::INTEGRATION,
    ] {
        assert!(result.timer().count(stage) > 0, "missing stage {stage}");
    }
}

#[test]
fn repeated_pairwise_aligns_reuse_source_views() {
    let pair = tiny_pair(12);
    let mut session = AlignmentSession::new(fast_config(), &pair.source).unwrap();
    let a = session.align(&pair.target).unwrap();
    let b = session.align(&pair.target).unwrap();
    assert_bit_identical(&a, &b);
    // Source orbit counting ran once even though two alignments completed.
    assert_eq!(session.timer().count(stages::ORBIT_COUNTING), 1);
    assert_eq!(session.timer().count(stages::LAPLACIAN), 1);
    // The second run therefore never recorded a counting stage of its own...
    assert_eq!(b.timer().count(stages::ORBIT_COUNTING), 1);
    // ...while the first run paid for source *and* target counting.
    assert_eq!(a.timer().count(stages::ORBIT_COUNTING), 2);
}

#[test]
fn align_many_runs_source_counting_and_training_exactly_once() {
    let pair_a = tiny_pair(12);
    let pair_b = tiny_pair(13);
    let pair_c = tiny_pair(12);
    let targets = vec![
        pair_a.target.clone(),
        pair_b.target.clone(),
        pair_c.target.clone(),
    ];

    let mut session = AlignmentSession::new(fast_config(), &pair_a.source).unwrap();
    let results = session.align_many(&targets).unwrap();
    assert_eq!(results.len(), 3);
    for (result, target) in results.iter().zip(&targets) {
        assert_eq!(
            result.alignment().shape(),
            (pair_a.source.num_nodes(), target.num_nodes())
        );
        let total: f64 = result.orbit_importance().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Per-target runs never re-train and never re-count the source.
        assert_eq!(result.timer().count(stages::TRAINING), 0);
        assert_eq!(result.timer().count(stages::ORBIT_COUNTING), 1); // target only
    }

    // The train-once guarantee, asserted via the session StageTimer.
    assert_eq!(session.timer().count(stages::ORBIT_COUNTING), 1);
    assert_eq!(session.timer().count(stages::LAPLACIAN), 1);
    assert_eq!(session.timer().count(stages::TRAINING), 1);

    // A second batch reuses everything — the counts do not move.
    let more = session.align_many(&targets[..2]).unwrap();
    assert_eq!(more.len(), 2);
    assert_eq!(session.timer().count(stages::ORBIT_COUNTING), 1);
    assert_eq!(session.timer().count(stages::TRAINING), 1);

    // Deterministic serving: same target, same batch position or not,
    // bit-identical output.
    assert_bit_identical(&results[0], &more[0]);
    assert_bit_identical(&results[1], &more[1]);

    // align_shared is align_many with a single target.
    let single = session.align_shared(&targets[0]).unwrap();
    assert_bit_identical(&results[0], &single);
}

#[test]
fn ablation_variants_run_end_to_end_through_sessions() {
    let pair = tiny_pair(14);
    let base = fast_config();
    for variant in HtcVariant::all() {
        let config = variant.configure(&base);
        let mut session = variant.session(&base, &pair.source).unwrap();
        let result = session.align(&pair.target).unwrap();

        let k = config.num_views();
        assert_eq!(
            result.alignment().shape(),
            (14, 14),
            "{}: alignment shape",
            variant.name()
        );
        assert_eq!(result.orbit_importance().len(), k, "{}", variant.name());
        assert_eq!(result.trusted_counts().len(), k, "{}", variant.name());
        let total: f64 = result.orbit_importance().iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "{}: importance weights must normalise (sum {total})",
            variant.name()
        );
        assert!(result
            .orbit_importance()
            .iter()
            .all(|&g| (0.0..=1.0).contains(&g)));
        assert_eq!(
            result.loss_history().len(),
            base.epochs,
            "{}",
            variant.name()
        );

        // Session and monolithic wrapper agree bit-for-bit per variant.
        let monolithic = variant
            .aligner(&base)
            .align(&pair.source, &pair.target)
            .unwrap();
        assert_bit_identical(&monolithic, &result);

        // The serving path works for every variant too.
        let served = session.align_shared(&pair.target).unwrap();
        assert_eq!(served.alignment().shape(), (14, 14), "{}", variant.name());
        assert_eq!(
            session.timer().count(stages::TRAINING),
            1,
            "{}",
            variant.name()
        );
    }
}

/// Observer that records events and cancels after a fixed number of epochs.
#[derive(Default)]
struct Recorder {
    stages_started: Mutex<Vec<String>>,
    epochs_seen: AtomicUsize,
    targets_done: AtomicUsize,
    cancel_after_epochs: Option<usize>,
    cancel_stage: Option<&'static str>,
}

impl ProgressObserver for Recorder {
    fn on_stage_start(&self, stage: &str) -> bool {
        self.stages_started.lock().unwrap().push(stage.to_string());
        self.cancel_stage != Some(stage)
    }

    fn on_epoch(&self, _epoch: usize, _total: usize, loss: f64) -> bool {
        assert!(loss.is_finite());
        let seen = self.epochs_seen.fetch_add(1, Ordering::SeqCst) + 1;
        self.cancel_after_epochs.is_none_or(|limit| seen < limit)
    }

    fn on_target_end(&self, _index: usize, _total: usize) {
        self.targets_done.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn observer_sees_stages_epochs_and_targets() {
    let pair = tiny_pair(12);
    let observer = Arc::new(Recorder::default());
    let config = fast_config();
    let mut session = AlignmentSession::new(config.clone(), &pair.source)
        .unwrap()
        .with_observer(observer.clone());
    session
        .align_many(std::slice::from_ref(&pair.target))
        .unwrap();

    let started = observer.stages_started.lock().unwrap().clone();
    assert_eq!(
        started,
        vec![
            // Shared source-side stages, once each...
            stages::ORBIT_COUNTING.to_string(),
            stages::LAPLACIAN.to_string(),
            stages::TRAINING.to_string(),
            // ...then the target-side stages of the single served target.
            stages::ORBIT_COUNTING.to_string(),
            stages::LAPLACIAN.to_string(),
            stages::FINE_TUNING.to_string(),
            stages::INTEGRATION.to_string(),
        ],
        "stage events fire in pipeline order, shared stages only once"
    );
    assert_eq!(observer.epochs_seen.load(Ordering::SeqCst), config.epochs);
    assert_eq!(observer.targets_done.load(Ordering::SeqCst), 1);
}

#[test]
fn serving_path_honours_stage_cancellation() {
    let pair = tiny_pair(12);
    let observer = Arc::new(Recorder {
        cancel_stage: Some(stages::FINE_TUNING),
        ..Recorder::default()
    });
    let mut session = AlignmentSession::new(fast_config(), &pair.source)
        .unwrap()
        .with_observer(observer);
    // Fine-tuning only happens target-side on the serving path; the veto
    // must still cancel the batch.
    let err = session
        .align_many(std::slice::from_ref(&pair.target))
        .unwrap_err();
    assert_eq!(err, HtcError::Cancelled);
    // The shared artifacts built before the veto stay cached.
    assert_eq!(session.timer().count(stages::TRAINING), 1);
}

#[test]
fn cancellation_mid_training_returns_cancelled() {
    let pair = tiny_pair(12);
    let observer = Arc::new(Recorder {
        cancel_after_epochs: Some(3),
        ..Recorder::default()
    });
    let mut session = AlignmentSession::new(fast_config(), &pair.source)
        .unwrap()
        .with_observer(observer.clone());
    let err = session.align(&pair.target).unwrap_err();
    assert_eq!(err, HtcError::Cancelled);
    assert_eq!(observer.epochs_seen.load(Ordering::SeqCst), 3);
}

#[test]
fn cancellation_at_stage_boundary_returns_cancelled() {
    let pair = tiny_pair(12);
    let observer = Arc::new(Recorder {
        cancel_stage: Some(stages::TRAINING),
        ..Recorder::default()
    });
    let mut session = AlignmentSession::new(fast_config(), &pair.source)
        .unwrap()
        .with_observer(observer);
    let err = session.align(&pair.target).unwrap_err();
    assert_eq!(err, HtcError::Cancelled);
    // The artifacts before the cancelled stage remain usable.
    assert_eq!(session.timer().count(stages::ORBIT_COUNTING), 1);
}

/// Observer that vetoes every target after index 0 while armed.
struct TargetCanceller {
    armed: std::sync::atomic::AtomicBool,
    vetoed: AtomicUsize,
}

impl ProgressObserver for TargetCanceller {
    fn on_target_start(&self, index: usize, _total: usize) -> bool {
        if index == 0 || !self.armed.load(Ordering::SeqCst) {
            return true;
        }
        self.vetoed.fetch_add(1, Ordering::SeqCst);
        false
    }
}

#[test]
fn align_many_cancelled_mid_fanout_leaves_the_session_reusable() {
    let pair = tiny_pair(12);
    let targets: Vec<_> = (0..3)
        .map(|i| {
            generate_pair(&SyntheticPairConfig {
                edge_removal: 0.02 + 0.02 * i as f64,
                ..SyntheticPairConfig::tiny(12)
            })
            .target
        })
        .collect();
    let observer = Arc::new(TargetCanceller {
        armed: std::sync::atomic::AtomicBool::new(true),
        vetoed: AtomicUsize::new(0),
    });
    let mut session = AlignmentSession::new(fast_config(), &pair.source)
        .unwrap()
        .with_observer(observer.clone());

    // The observer cancels after the first target: the batch returns
    // `Cancelled` as an error — not a worker panic unwinding into the test.
    let err = session.align_many(&targets).unwrap_err();
    assert_eq!(err, HtcError::Cancelled);
    assert!(observer.vetoed.load(Ordering::SeqCst) >= 1);
    // The shared source-side artifacts built before the veto stay cached...
    assert_eq!(session.timer().count(stages::TRAINING), 1);
    assert_eq!(session.timer().count(stages::ORBIT_COUNTING), 1);

    // ...and the session remains fully reusable: disarm the observer and the
    // same batch now serves, without re-training, bit-identical to a batch
    // from a session that was never cancelled.
    observer.armed.store(false, Ordering::SeqCst);
    let results = session.align_many(&targets).unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(session.timer().count(stages::TRAINING), 1);

    let mut fresh = AlignmentSession::new(fast_config(), &pair.source).unwrap();
    let expected = fresh.align_many(&targets).unwrap();
    for (got, want) in results.iter().zip(&expected) {
        assert_bit_identical(got, want);
    }
}

/// Observer that vetoes a named stage until disarmed.
struct StageCanceller {
    stage: &'static str,
    armed: std::sync::atomic::AtomicBool,
}

impl ProgressObserver for StageCanceller {
    fn on_stage_start(&self, stage: &str) -> bool {
        !(self.armed.load(Ordering::SeqCst) && stage == self.stage)
    }
}

#[test]
fn cancelled_stage_retried_on_the_same_session_recomputes_cleanly() {
    let pair = tiny_pair(13);
    let monolithic = HtcAligner::new(fast_config())
        .align(&pair.source, &pair.target)
        .unwrap();

    for stage in [stages::TRAINING, stages::FINE_TUNING, stages::INTEGRATION] {
        let observer = Arc::new(StageCanceller {
            stage,
            armed: std::sync::atomic::AtomicBool::new(true),
        });
        let mut session = AlignmentSession::new(fast_config(), &pair.source)
            .unwrap()
            .with_observer(observer.clone());
        let err = session.align(&pair.target).unwrap_err();
        assert_eq!(err, HtcError::Cancelled, "cancelling {stage}");

        // No stale partially-populated artifact survives the failed run: the
        // retried alignment neither panics on a broken invariant nor serves
        // results influenced by the aborted attempt.
        observer.armed.store(false, Ordering::SeqCst);
        let retried = session.align(&pair.target).unwrap();
        assert_bit_identical(&monolithic, &retried);
    }
}

#[test]
fn session_and_pair_reset_recompute_bit_identically() {
    let pair = tiny_pair(12);
    let mut session = AlignmentSession::new(fast_config(), &pair.source).unwrap();
    let baseline = session.align_shared(&pair.target).unwrap();
    assert_eq!(session.timer().count(stages::TRAINING), 1);

    // reset() drops every cached artifact: the next serve re-counts and
    // re-trains (counts move) and still produces bit-identical output.
    session.reset();
    let rebuilt = session.align_shared(&pair.target).unwrap();
    assert_bit_identical(&baseline, &rebuilt);
    assert_eq!(session.timer().count(stages::TRAINING), 2);
    assert_eq!(session.timer().count(stages::ORBIT_COUNTING), 2);

    // PairAlignment::reset() discards pair-side progress mid-flight; the
    // finished result still matches the monolithic aligner bit-for-bit.
    let monolithic = HtcAligner::new(fast_config())
        .align(&pair.source, &pair.target)
        .unwrap();
    let mut staged = session.begin(&pair.target).unwrap();
    staged.train().unwrap();
    staged.reset();
    let result = staged.finish().unwrap();
    assert_bit_identical(&monolithic, &result);
}

#[test]
fn persisted_artifacts_warm_start_a_new_session_bit_exactly() {
    let pair = tiny_pair(13);
    let config = fast_config();
    let dir = std::env::temp_dir();
    let encoder_path = dir.join(format!("htc-session-enc-{}.bin", std::process::id()));
    let views_path = dir.join(format!("htc-session-views-{}.bin", std::process::id()));

    // Train in a "producer" session and persist the artifacts.
    let mut producer = AlignmentSession::new(config.clone(), &pair.source).unwrap();
    let baseline = producer.align_shared(&pair.target).unwrap();
    producer.source_views().unwrap().save(&views_path).unwrap();
    producer.train().unwrap().save(&encoder_path).unwrap();

    // A fresh "consumer" session warm-starts from disk: no counting, no
    // training, bit-identical serving results.
    let mut consumer = AlignmentSession::new(config.clone(), &pair.source).unwrap();
    consumer
        .set_source_views(TopologyViews::load(&views_path).unwrap())
        .unwrap();
    consumer
        .set_encoder(TrainedEncoder::load(&encoder_path).unwrap())
        .unwrap();
    let served = consumer.align_shared(&pair.target).unwrap();
    assert_bit_identical(&baseline, &served);
    assert_eq!(consumer.timer().count(stages::ORBIT_COUNTING), 0);
    assert_eq!(consumer.timer().count(stages::TRAINING), 0);

    // The opposite load order must work too: validated views are exactly
    // what the session would build, so they do not invalidate the encoder.
    let mut reversed = AlignmentSession::new(config.clone(), &pair.source).unwrap();
    reversed
        .set_encoder(TrainedEncoder::load(&encoder_path).unwrap())
        .unwrap();
    reversed
        .set_source_views(TopologyViews::load(&views_path).unwrap())
        .unwrap();
    let served = reversed.align_shared(&pair.target).unwrap();
    assert_bit_identical(&baseline, &served);
    assert_eq!(reversed.timer().count(stages::TRAINING), 0);

    // Incompatible artifacts are rejected up front: wrong node count...
    let other = tiny_pair(9);
    let mut mismatched = AlignmentSession::new(config.clone(), &other.source).unwrap();
    let err = mismatched
        .set_source_views(TopologyViews::load(&views_path).unwrap())
        .unwrap_err();
    assert!(matches!(err, HtcError::Persistence(_)), "{err}");
    // ...wrong topology mode (orbit views into a low-order session)...
    let mut low_order_config = config.clone();
    low_order_config.topology = htc::core::TopologyMode::LowOrderOnly;
    let mut wrong_mode = AlignmentSession::new(low_order_config, &pair.source).unwrap();
    let err = wrong_mode
        .set_source_views(TopologyViews::load(&views_path).unwrap())
        .unwrap_err();
    assert!(matches!(err, HtcError::Persistence(_)), "{err}");
    // ...a structurally different graph with the same node count (stale
    // artifact after a catalog update)...
    let mut stale = AlignmentSession::new(config.clone(), &pair.target).unwrap();
    let err = stale
        .set_source_views(TopologyViews::load(&views_path).unwrap())
        .unwrap_err();
    assert!(matches!(err, HtcError::Persistence(_)), "{err}");
    // ...and wrong orbit parameters (different weighting).
    let mut binary_config = config;
    binary_config.topology = htc::core::TopologyMode::Orbits {
        num_orbits: 5,
        weighting: htc::orbits::GomWeighting::Binary,
    };
    let mut wrong_weighting = AlignmentSession::new(binary_config, &pair.source).unwrap();
    let err = wrong_weighting
        .set_source_views(TopologyViews::load(&views_path).unwrap())
        .unwrap_err();
    assert!(matches!(err, HtcError::Persistence(_)), "{err}");

    // An empty batch is a no-op: no counting, no training.
    let mut idle = AlignmentSession::new(fast_config(), &pair.source).unwrap();
    assert!(idle.align_many(&[]).unwrap().is_empty());
    assert_eq!(idle.timer().count(stages::TRAINING), 0);

    std::fs::remove_file(&encoder_path).ok();
    std::fs::remove_file(&views_path).ok();
}

#[test]
fn session_rejects_invalid_inputs_like_the_aligner() {
    let pair = tiny_pair(10);
    // Invalid config (out-of-range orbit count) fails at session open.
    let bad = HtcConfig::fast().with_num_orbits(99);
    assert!(matches!(
        AlignmentSession::new(bad, &pair.source),
        Err(HtcError::InvalidConfig(_))
    ));
    // Mismatched target attribute dimensionality fails at align time.
    let bad_target = pair
        .target
        .with_attributes(htc::linalg::DenseMatrix::zeros(pair.target.num_nodes(), 9))
        .unwrap();
    let mut session = AlignmentSession::new(fast_config(), &pair.source).unwrap();
    assert!(matches!(
        session.align(&bad_target),
        Err(HtcError::AttributeDimensionMismatch { .. })
    ));
    // And align_many validates every target before doing any work.
    let err = session
        .align_many(&[pair.target.clone(), bad_target])
        .unwrap_err();
    assert!(matches!(err, HtcError::AttributeDimensionMismatch { .. }));
    assert_eq!(session.timer().count(stages::TRAINING), 0);
}
