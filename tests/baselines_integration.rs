//! Integration tests for the baseline methods on generated dataset pairs.

use htc::baselines::{table2_baselines, Aligner, DegreeAttr};
use htc::datasets::{generate_pair, SyntheticPairConfig};
use htc::graph::generators::seeded_rng;
use htc::graph::perturb::GroundTruth;
use htc::metrics::{precision_at_q, AlignmentReport};

fn pair() -> htc::datasets::DatasetPair {
    generate_pair(&SyntheticPairConfig {
        edge_removal: 0.05,
        ..SyntheticPairConfig::tiny(50)
    })
}

/// Every baseline in the Table II battery runs on a generated pair and
/// produces a finite score matrix of the right shape.
#[test]
fn all_baselines_run_on_generated_pairs() {
    let pair = pair();
    let mut rng = seeded_rng(1);
    let seeds = pair.ground_truth.sample_fraction(0.1, &mut rng);
    let none = GroundTruth::new(vec![None; pair.source.num_nodes()]);
    for baseline in table2_baselines(7) {
        let supervision = if baseline.is_supervised() {
            &seeds
        } else {
            &none
        };
        let m = baseline
            .align(&pair.source, &pair.target, supervision)
            .unwrap_or_else(|e| panic!("{} failed: {e}", baseline.name()));
        assert_eq!(
            m.shape(),
            (pair.source.num_nodes(), pair.target.num_nodes()),
            "{}",
            baseline.name()
        );
        assert!(
            m.data().iter().all(|v| v.is_finite()),
            "{} produced non-finite scores",
            baseline.name()
        );
    }
}

/// With a fully identical pair (no noise), the informative baselines should
/// clearly beat random assignment.
#[test]
fn baselines_beat_chance_on_clean_pairs() {
    let clean = generate_pair(&SyntheticPairConfig {
        edge_removal: 0.0,
        attr_flip: 0.0,
        ..SyntheticPairConfig::tiny(50)
    });
    let chance = 1.0 / 50.0;
    let mut rng = seeded_rng(2);
    let seeds = clean.ground_truth.sample_fraction(0.1, &mut rng);
    let none = GroundTruth::new(vec![None; 50]);
    for baseline in table2_baselines(3) {
        let supervision = if baseline.is_supervised() {
            &seeds
        } else {
            &none
        };
        let m = baseline
            .align(&clean.source, &clean.target, supervision)
            .unwrap();
        let p10 = precision_at_q(&m, &clean.ground_truth, 10);
        assert!(
            p10 > 2.0 * chance,
            "{}: p@10 {p10} does not beat chance",
            baseline.name()
        );
    }
}

/// The sanity-floor heuristic produces a usable report through the generic
/// trait object path.
#[test]
fn degree_heuristic_via_trait_object() {
    let pair = pair();
    let aligner: Box<dyn Aligner> = Box::new(DegreeAttr::new());
    let m = aligner
        .align(
            &pair.source,
            &pair.target,
            &GroundTruth::new(vec![None; pair.source.num_nodes()]),
        )
        .unwrap();
    let report = AlignmentReport::evaluate(&m, &pair.ground_truth, &[1, 10]);
    assert!(report.precision(10).unwrap() >= report.precision(1).unwrap());
    assert_eq!(report.num_anchors(), pair.num_anchors());
}
