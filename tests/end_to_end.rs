//! End-to-end integration tests spanning datasets → orbits → core → metrics.

use htc::core::{HtcAligner, HtcConfig};
use htc::datasets::{generate_pair, SyntheticPairConfig};
use htc::metrics::{precision_at_q, AlignmentReport};

fn fast_config(epochs: usize) -> HtcConfig {
    let mut config = HtcConfig::fast();
    config.epochs = epochs;
    config
}

/// A permuted copy with no structural or attribute noise must be essentially
/// recoverable: the full pipeline should place the true anchor in the top-5
/// candidates for most nodes.
#[test]
fn noise_free_permutation_is_recovered() {
    let pair = generate_pair(&SyntheticPairConfig {
        edge_removal: 0.0,
        attr_flip: 0.0,
        ..SyntheticPairConfig::tiny(40)
    });
    let result = HtcAligner::new(fast_config(50))
        .align(&pair.source, &pair.target)
        .unwrap();
    let report = AlignmentReport::evaluate(result.alignment(), &pair.ground_truth, &[1, 5]);
    assert!(
        report.precision(1).unwrap() >= 0.5,
        "p@1 too low: {:?}",
        report.precision(1)
    );
    assert!(
        report.precision(5).unwrap() >= 0.8,
        "p@5 too low: {:?}",
        report.precision(5)
    );
}

/// Light structural noise should still leave a clearly better-than-chance
/// alignment.
#[test]
fn noisy_pair_is_better_than_chance() {
    let pair = generate_pair(&SyntheticPairConfig {
        edge_removal: 0.15,
        ..SyntheticPairConfig::tiny(40)
    });
    let result = HtcAligner::new(fast_config(40))
        .align(&pair.source, &pair.target)
        .unwrap();
    let p1 = precision_at_q(result.alignment(), &pair.ground_truth, 1);
    // Chance level is 1/40 = 0.025.
    assert!(p1 > 0.15, "p@1 {p1} is not clearly above chance");
}

/// The whole pipeline is deterministic for a fixed configuration: generating
/// the pair and aligning twice gives bit-identical alignment matrices.
#[test]
fn pipeline_is_reproducible() {
    let config = SyntheticPairConfig::tiny(25);
    let pair_a = generate_pair(&config);
    let pair_b = generate_pair(&config);
    let result_a = HtcAligner::new(fast_config(15))
        .align(&pair_a.source, &pair_a.target)
        .unwrap();
    let result_b = HtcAligner::new(fast_config(15))
        .align(&pair_b.source, &pair_b.target)
        .unwrap();
    assert!(result_a.alignment().approx_eq(result_b.alignment(), 0.0));
    assert_eq!(result_a.trusted_counts(), result_b.trusted_counts());
}

/// Orbit importances form a probability distribution and the diagnostics are
/// internally consistent after a real run.
#[test]
fn diagnostics_are_consistent() {
    let pair = generate_pair(&SyntheticPairConfig::tiny(30));
    let config = fast_config(20);
    let views = config.num_views();
    let result = HtcAligner::new(config)
        .align(&pair.source, &pair.target)
        .unwrap();
    assert_eq!(result.orbit_importance().len(), views);
    assert!((result.orbit_importance().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert_eq!(result.trusted_counts().len(), views);
    assert!(
        result
            .loss_history()
            .windows(2)
            .filter(|w| w[1] <= w[0])
            .count()
            > 0
    );
    assert_eq!(result.predicted_anchors().len(), pair.source.num_nodes());
}

/// Different node counts on the two sides (target-only nodes) are supported
/// end to end.
#[test]
fn rectangular_alignment_is_supported() {
    let pair = generate_pair(&SyntheticPairConfig {
        extra_target_nodes: 12,
        ..SyntheticPairConfig::tiny(24)
    });
    let result = HtcAligner::new(fast_config(15))
        .align(&pair.source, &pair.target)
        .unwrap();
    assert_eq!(result.alignment().shape(), (24, 36));
    let p10 = precision_at_q(result.alignment(), &pair.ground_truth, 10);
    assert!(p10 > 0.0);
}
