//! Integration tests exercising the facade crate's re-exports and the
//! interplay of the substrate crates (graph → orbits → Laplacian → encoder →
//! viz) without going through the full pipeline.

use htc::core::laplacian::{orbit_laplacian, orbit_laplacians};
use htc::graph::generators::{planted_partition, seeded_rng};
use htc::graph::perturb::{permute_graph, GroundTruth};
use htc::graph::Graph;
use htc::linalg::DenseMatrix;
use htc::nn::{Activation, GcnEncoder};
use htc::orbits::{count_edge_orbits, EdgeOrbit, GomSet, GomWeighting};
use htc::viz::pca_project;
use rand::SeedableRng;

/// Orbit counting is invariant under node relabelling: permuting the graph
/// permutes the counts but never changes the multiset of per-edge vectors.
#[test]
fn orbit_counts_are_permutation_invariant() {
    let mut rng = seeded_rng(5);
    let (graph, _) = planted_partition(40, 4, 0.3, 0.02, &mut rng);
    let perm: Vec<usize> = {
        use htc::graph::generators::random_permutation;
        random_permutation(40, &mut rng)
    };
    let permuted = permute_graph(&graph, &perm);

    let counts = count_edge_orbits(&graph);
    let counts_permuted = count_edge_orbits(&permuted);
    for (&(u, v), vec) in counts.edges.iter().zip(&counts.edge_counts) {
        let mapped = counts_permuted.counts_for(perm[u], perm[v]).unwrap();
        assert_eq!(vec, mapped, "edge ({u},{v})");
    }
}

/// The whole GOM → Laplacian → shared-encoder chain transforms consistency
/// into identical embeddings (Proposition 1 in vitro): encoding a graph and
/// its relabelled copy with shared weights yields embeddings that match up to
/// the permutation.
#[test]
fn shared_encoder_is_equivariant_under_relabelling() {
    let mut rng = seeded_rng(9);
    let (graph, communities) = planted_partition(30, 3, 0.35, 0.02, &mut rng);
    let perm: Vec<usize> = {
        use htc::graph::generators::random_permutation;
        random_permutation(30, &mut rng)
    };
    let permuted = permute_graph(&graph, &perm);

    // Attributes follow the community id; permuted copy gets permuted rows.
    let attrs = DenseMatrix::from_rows(
        &communities
            .iter()
            .map(|&c| vec![c as f64, 1.0 - c as f64 * 0.5])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let mut permuted_attrs = DenseMatrix::zeros(30, 2);
    for (u, &pu) in perm.iter().enumerate() {
        permuted_attrs.row_mut(pu).copy_from_slice(attrs.row(u));
    }

    let goms = GomSet::build(&graph, 6, GomWeighting::Weighted);
    let goms_p = GomSet::build(&permuted, 6, GomWeighting::Weighted);
    let laps = orbit_laplacians(&goms);
    let laps_p = orbit_laplacians(&goms_p);

    let mut enc_rng = rand::rngs::StdRng::seed_from_u64(3);
    let encoder = GcnEncoder::new(&[2, 8, 4], Activation::Tanh, &mut enc_rng);
    for (lap, lap_p) in laps.iter().zip(&laps_p) {
        let h = encoder.forward(lap, &attrs).unwrap();
        let h_p = encoder.forward(lap_p, &permuted_attrs).unwrap();
        for (u, &pu) in perm.iter().enumerate() {
            let original = h.row(u);
            let relabelled = h_p.row(pu);
            for (a, b) in original.iter().zip(relabelled) {
                assert!((a - b).abs() < 1e-9, "node {u}: {a} vs {b}");
            }
        }
    }
}

/// The normalised Laplacian of every orbit of a clique treats all nodes
/// identically.
#[test]
fn clique_orbit_laplacians_are_node_symmetric() {
    let graph = Graph::complete(6);
    let goms = GomSet::build(&graph, 13, GomWeighting::Weighted);
    for (k, gom) in goms.iter() {
        let lap = orbit_laplacian(gom);
        let first_diag = lap.get(0, 0);
        for u in 1..6 {
            assert!(
                (lap.get(u, u) - first_diag).abs() < 1e-12,
                "orbit {k}, node {u}"
            );
        }
    }
    // Clique-specific sanity: every edge of K6 lies on C(4,2)=6 four-cliques...
    // more precisely on C(6-2, 2) = 6 of them.
    let counts = count_edge_orbits(&graph);
    assert_eq!(
        counts.counts_for(0, 1).unwrap()[EdgeOrbit::CliqueEdge.index()],
        6
    );
}

/// Ground-truth bookkeeping composes with the facade's metric functions.
#[test]
fn ground_truth_and_pca_helpers_compose() {
    let gt = GroundTruth::from_permutation(&[2, 0, 1]);
    let mut alignment = DenseMatrix::zeros(3, 3);
    for (s, t) in gt.anchors() {
        alignment.set(s, t, 1.0);
    }
    assert_eq!(htc::metrics::precision_at_q(&alignment, &gt, 1), 1.0);

    // PCA on embeddings produced by the encoder keeps the row count.
    let data = DenseMatrix::from_rows(&[
        vec![0.0, 0.1, 0.2],
        vec![1.0, 0.9, 1.1],
        vec![2.0, 2.1, 1.9],
        vec![3.0, 3.2, 2.8],
    ])
    .unwrap();
    let projected = pca_project(&data, 2);
    assert_eq!(projected.shape(), (4, 2));
}
