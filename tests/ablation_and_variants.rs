//! Integration tests for the ablation variants: the orderings the paper's
//! Table III relies on should hold qualitatively on structured synthetic
//! pairs.

use htc::core::{HtcAligner, HtcConfig, HtcVariant};
use htc::datasets::{generate_pair, DatasetPair, SyntheticPairConfig};
use htc::metrics::{mrr, precision_at_q};

fn structured_pair() -> DatasetPair {
    // A community-structured pair where attributes alone cannot disambiguate
    // nodes inside a community, so topology (and its order) matters.
    generate_pair(&SyntheticPairConfig {
        name: "ablation-pair".into(),
        num_nodes: 120,
        model: htc::datasets::GraphModel::PlantedPartition {
            communities: 6,
            p_in: 0.4,
            p_out: 0.01,
        },
        attr_dim: 8,
        edge_removal: 0.1,
        attr_flip: 0.02,
        extra_target_nodes: 0,
        anchor_fraction: 1.0,
        seed: 99,
    })
}

fn run_variant(pair: &DatasetPair, variant: HtcVariant) -> (f64, f64) {
    let mut base = HtcConfig::fast();
    base.epochs = 40;
    base.topology = htc::core::TopologyMode::Orbits {
        num_orbits: 9,
        weighting: htc::orbits::GomWeighting::Weighted,
    };
    let result = HtcAligner::new(variant.configure(&base))
        .align(&pair.source, &pair.target)
        .unwrap();
    (
        precision_at_q(result.alignment(), &pair.ground_truth, 1),
        mrr(result.alignment(), &pair.ground_truth),
    )
}

/// The full method should not lose to the low-order, no-fine-tuning variant —
/// the central claim of the ablation study.
#[test]
fn full_htc_beats_low_order_variant() {
    let pair = structured_pair();
    let (p_full, mrr_full) = run_variant(&pair, HtcVariant::Full);
    let (p_low, mrr_low) = run_variant(&pair, HtcVariant::LowOrder);
    assert!(
        p_full >= p_low,
        "full HTC p@1 {p_full} should be at least HTC-L {p_low}"
    );
    assert!(
        mrr_full >= mrr_low * 0.95,
        "full HTC MRR {mrr_full} should not trail HTC-L {mrr_low}"
    );
}

/// Higher-order topology without fine-tuning should already improve on the
/// plain low-order variant (HTC-H vs HTC-L in the paper).
#[test]
fn higher_order_topology_helps_without_finetuning() {
    let pair = structured_pair();
    let (p_high, _) = run_variant(&pair, HtcVariant::HighOrder);
    let (p_low, _) = run_variant(&pair, HtcVariant::LowOrder);
    assert!(
        p_high >= p_low * 0.9,
        "HTC-H p@1 {p_high} collapsed relative to HTC-L {p_low}"
    );
}

/// All five ablation variants must at least run and produce valid scores on
/// the same pair.
#[test]
fn all_variants_produce_valid_alignments() {
    let pair = generate_pair(&SyntheticPairConfig::tiny(30));
    let base = HtcConfig::fast();
    for variant in HtcVariant::all() {
        let result = HtcAligner::new(variant.configure(&base))
            .align(&pair.source, &pair.target)
            .unwrap_or_else(|e| panic!("{} failed: {e}", variant.name()));
        assert_eq!(result.alignment().shape(), (30, 30), "{}", variant.name());
        assert!(
            result.alignment().data().iter().all(|v| v.is_finite()),
            "{} produced non-finite scores",
            variant.name()
        );
    }
}
