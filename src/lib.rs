//! # htc
//!
//! Facade crate for the HTC reproduction: **"Towards Higher-order Topological
//! Consistency for Unsupervised Network Alignment"** (ICDE 2023).
//!
//! The implementation lives in the workspace crates; this crate re-exports
//! them under stable module names so downstream users (and the examples and
//! integration tests in this repository) can depend on a single crate:
//!
//! * [`graph`] — graph substrate ([`htc_graph`])
//! * [`linalg`] — dense/sparse linear algebra ([`htc_linalg`])
//! * [`orbits`] — edge-orbit counting and GOM construction ([`htc_orbits`])
//! * [`nn`] — GCN auto-encoder substrate ([`htc_nn`])
//! * [`core`] — the HTC alignment pipeline ([`htc_core`])
//! * [`baselines`] — comparison methods ([`htc_baselines`])
//! * [`datasets`] — synthetic evaluation datasets ([`htc_datasets`])
//! * [`metrics`] — precision@q / MRR and timers ([`htc_metrics`])
//! * [`serve`] — the `htc-serve` HTTP/JSON alignment daemon ([`htc_serve`])
//! * [`fleet`] — sharded multi-process serving: supervisor + consistent-hash
//!   router ([`htc_fleet`])
//! * [`viz`] — t-SNE / PCA for embedding figures ([`htc_viz`])
//!
//! ## Quickstart
//!
//! ```
//! use htc::datasets::{SyntheticPairConfig, generate_pair};
//! use htc::core::{HtcConfig, HtcAligner};
//! use htc::metrics::AlignmentReport;
//!
//! // Generate a small source/target pair with known ground truth.
//! let pair = generate_pair(&SyntheticPairConfig::tiny(7));
//! // Align it with HTC (reduced settings keep the doctest fast).
//! let config = HtcConfig::fast();
//! let result = HtcAligner::new(config).align(&pair.source, &pair.target).unwrap();
//! let report = AlignmentReport::evaluate(result.alignment(), &pair.ground_truth, &[1, 10]);
//! assert!(report.precision(1).unwrap() >= 0.0);
//! ```

pub use htc_baselines as baselines;
pub use htc_core as core;
pub use htc_datasets as datasets;
pub use htc_fleet as fleet;
pub use htc_graph as graph;
pub use htc_linalg as linalg;
pub use htc_metrics as metrics;
pub use htc_nn as nn;
pub use htc_orbits as orbits;
pub use htc_serve as serve;
pub use htc_viz as viz;
