//! `htc-align` — command-line network alignment.
//!
//! Aligns two attributed networks stored in the workspace's plain-text format
//! (see `htc::graph::io`) and writes the predicted anchor pairs to stdout (or
//! a file).  This is the "I just want to align my two edge lists" entry point
//! of the library.
//!
//! ```text
//! htc-align --source data/source --target data/target \
//!           [--output anchors.tsv] [--preset fast|small|paper] \
//!           [--orbits K] [--one-to-one] [--seed N]
//! ```
//!
//! `--source`/`--target` are path *stems*: `<stem>.edges` must contain the
//! edge list and `<stem>.attrs` the attribute matrix (one row per node).

use htc::core::matching::greedy_matching;
use htc::core::{HtcAligner, HtcConfig};
use htc::graph::io::read_network;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct CliArgs {
    source: PathBuf,
    target: PathBuf,
    output: Option<PathBuf>,
    preset: String,
    orbits: Option<usize>,
    one_to_one: bool,
    seed: Option<u64>,
}

fn print_usage() {
    eprintln!(
        "usage: htc-align --source <stem> --target <stem> [--output <file>] \
         [--preset fast|small|paper] [--orbits K] [--one-to-one] [--seed N]"
    );
}

fn parse_cli<I: Iterator<Item = String>>(mut args: I) -> Result<CliArgs, String> {
    let mut source = None;
    let mut target = None;
    let mut output = None;
    let mut preset = "small".to_string();
    let mut orbits = None;
    let mut one_to_one = false;
    let mut seed = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--source" => source = args.next().map(PathBuf::from),
            "--target" => target = args.next().map(PathBuf::from),
            "--output" => output = args.next().map(PathBuf::from),
            "--preset" => preset = args.next().ok_or("--preset needs a value")?,
            "--orbits" => {
                orbits = Some(
                    args.next()
                        .ok_or("--orbits needs a value")?
                        .parse::<usize>()
                        .map_err(|e| format!("bad --orbits value: {e}"))?,
                )
            }
            "--one-to-one" => one_to_one = true,
            "--seed" => {
                seed = Some(
                    args.next()
                        .ok_or("--seed needs a value")?
                        .parse::<u64>()
                        .map_err(|e| format!("bad --seed value: {e}"))?,
                )
            }
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(CliArgs {
        source: source.ok_or("--source is required")?,
        target: target.ok_or("--target is required")?,
        output,
        preset,
        orbits,
        one_to_one,
        seed,
    })
}

fn config_from(args: &CliArgs) -> Result<HtcConfig, String> {
    let mut config = match args.preset.as_str() {
        "fast" => HtcConfig::fast(),
        "small" => HtcConfig::small(),
        "paper" => HtcConfig::paper(),
        other => return Err(format!("unknown preset {other:?} (expected fast|small|paper)")),
    };
    if let Some(k) = args.orbits {
        config = config.with_num_orbits(k);
    }
    if let Some(seed) = args.seed {
        config = config.with_seed(seed);
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args = match parse_cli(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            print_usage();
            return ExitCode::from(2);
        }
    };
    let config = match config_from(&args) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };

    let source = match read_network(&args.source) {
        Ok(network) => network,
        Err(e) => {
            eprintln!("error: failed to read source network {:?}: {e}", args.source);
            return ExitCode::FAILURE;
        }
    };
    let target = match read_network(&args.target) {
        Ok(network) => network,
        Err(e) => {
            eprintln!("error: failed to read target network {:?}: {e}", args.target);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "aligning {} nodes / {} edges against {} nodes / {} edges ({} preset, {} orbit views)",
        source.num_nodes(),
        source.num_edges(),
        target.num_nodes(),
        target.num_edges(),
        args.preset,
        config.num_views()
    );

    let result = match HtcAligner::new(config).align(&source, &target) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: alignment failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut lines = String::from("source\ttarget\tscore\n");
    if args.one_to_one {
        let matching = greedy_matching(result.alignment());
        for (s, t) in matching.pairs() {
            lines.push_str(&format!("{s}\t{t}\t{:.6}\n", result.alignment().get(s, t)));
        }
    } else {
        for (s, &t) in result.predicted_anchors().iter().enumerate() {
            lines.push_str(&format!("{s}\t{t}\t{:.6}\n", result.alignment().get(s, t)));
        }
    }

    match &args.output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &lines) {
                eprintln!("error: failed to write {path:?}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} predicted anchors to {path:?}", lines.lines().count() - 1);
        }
        None => print!("{lines}"),
    }
    eprintln!("\nruntime decomposition:\n{}", result.timer().render());
    ExitCode::SUCCESS
}
