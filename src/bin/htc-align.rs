//! `htc-align` — command-line network alignment.
//!
//! Aligns two attributed networks stored in the workspace's plain-text format
//! (see `htc::graph::io`) and writes the predicted anchor pairs to stdout (or
//! a file).  This is the "I just want to align my two edge lists" entry point
//! of the library.
//!
//! ```text
//! htc-align --source data/source --target data/target \
//!           [--output anchors.tsv] [--preset fast|small|paper|large] \
//!           [--orbits K] [--one-to-one] [--seed N] [--threads N] [--json]
//! ```
//!
//! `--source`/`--target` are path *stems*: `<stem>.edges` must contain the
//! edge list and `<stem>.attrs` the attribute matrix (one row per node).
//!
//! `--threads N` pins the worker-pool width (equivalent to setting
//! `HTC_NUM_THREADS`).  `--json` replaces the anchor TSV on stdout with a
//! machine-readable summary — stage timings, trusted-pair counts and orbit
//! importance weights — while `--output` still receives the anchor TSV.
//!
//! All flags, including the preset name, are validated at parse time, before
//! any network is read or aligned.

use htc::core::matching::{greedy_matching, greedy_matching_topk};
use htc::core::{HtcAligner, HtcConfig};
use htc::graph::io::read_network;
use std::path::PathBuf;
use std::process::ExitCode;

/// The configuration presets the CLI exposes; parsing the flag validates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Preset {
    Fast,
    Small,
    Paper,
    Large,
}

impl Preset {
    fn parse(name: &str) -> Result<Preset, String> {
        match name {
            "fast" => Ok(Preset::Fast),
            "small" => Ok(Preset::Small),
            "paper" => Ok(Preset::Paper),
            "large" => Ok(Preset::Large),
            other => Err(format!(
                "unknown preset {other:?} (expected fast|small|paper|large)"
            )),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Preset::Fast => "fast",
            Preset::Small => "small",
            Preset::Paper => "paper",
            Preset::Large => "large",
        }
    }

    fn config(self) -> HtcConfig {
        match self {
            Preset::Fast => HtcConfig::fast(),
            Preset::Small => HtcConfig::small(),
            Preset::Paper => HtcConfig::paper(),
            Preset::Large => HtcConfig::large(),
        }
    }
}

#[derive(Debug, Clone)]
struct CliArgs {
    source: PathBuf,
    target: PathBuf,
    output: Option<PathBuf>,
    preset: Preset,
    orbits: Option<usize>,
    one_to_one: bool,
    seed: Option<u64>,
    threads: Option<usize>,
    json: bool,
}

fn print_usage() {
    eprintln!(
        "usage: htc-align --source <stem> --target <stem> [--output <file>] \
         [--preset fast|small|paper|large] [--orbits K] [--one-to-one] [--seed N] \
         [--threads N] [--json]"
    );
}

fn parse_cli<I: Iterator<Item = String>>(mut args: I) -> Result<CliArgs, String> {
    let mut source = None;
    let mut target = None;
    let mut output = None;
    let mut preset = Preset::Small;
    let mut orbits = None;
    let mut one_to_one = false;
    let mut seed = None;
    let mut threads = None;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--source" => source = args.next().map(PathBuf::from),
            "--target" => target = args.next().map(PathBuf::from),
            "--output" => output = args.next().map(PathBuf::from),
            "--preset" => {
                preset = Preset::parse(&args.next().ok_or("--preset needs a value")?)?;
            }
            "--orbits" => {
                orbits = Some(
                    args.next()
                        .ok_or("--orbits needs a value")?
                        .parse::<usize>()
                        .map_err(|e| format!("bad --orbits value: {e}"))?,
                )
            }
            "--one-to-one" => one_to_one = true,
            "--seed" => {
                seed = Some(
                    args.next()
                        .ok_or("--seed needs a value")?
                        .parse::<u64>()
                        .map_err(|e| format!("bad --seed value: {e}"))?,
                )
            }
            "--threads" => {
                let n = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad --threads value: {e}"))?;
                if n == 0 || n > htc::linalg::parallel::MAX_THREADS {
                    return Err(format!(
                        "--threads must be between 1 and {}",
                        htc::linalg::parallel::MAX_THREADS
                    ));
                }
                threads = Some(n);
            }
            "--json" => json = true,
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(CliArgs {
        source: source.ok_or("--source is required")?,
        target: target.ok_or("--target is required")?,
        output,
        preset,
        orbits,
        one_to_one,
        seed,
        threads,
        json,
    })
}

/// Derives the pipeline configuration from the parsed flags, rejecting
/// out-of-range values (e.g. `--orbits 50`) before any I/O happens.
fn config_from(args: &CliArgs) -> Result<HtcConfig, String> {
    let mut config = args.preset.config();
    if let Some(k) = args.orbits {
        config = config.with_num_orbits(k);
    }
    if let Some(seed) = args.seed {
        config = config.with_seed(seed);
    }
    config.validate().map_err(|e| e.to_string())?;
    Ok(config)
}

/// Renders the `--json` summary: stage timings, trusted-pair counts and
/// importance weights.
fn json_summary(args: &CliArgs, config: &HtcConfig, result: &htc::core::HtcResult) -> String {
    let stages = result.timer().stages_json();
    let trusted: Vec<String> = result
        .trusted_counts()
        .iter()
        .map(|c| c.to_string())
        .collect();
    let gamma: Vec<String> = result
        .orbit_importance()
        .iter()
        .map(|g| format!("{g:.6}"))
        .collect();
    format!(
        "{{\n  \"preset\": \"{}\",\n  \"num_views\": {},\n  \"threads\": {},\n  \
         \"total_seconds\": {:.6},\n  \"stages\": {},\n  \
         \"trusted_counts\": [{}],\n  \"orbit_importance\": [{}]\n}}",
        args.preset.name(),
        config.num_views(),
        htc::linalg::parallel::num_threads(),
        result.timer().total().as_secs_f64(),
        stages,
        trusted.join(", "),
        gamma.join(", ")
    )
}

fn main() -> ExitCode {
    let args = match parse_cli(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            print_usage();
            return ExitCode::from(2);
        }
    };
    let config = match config_from(&args) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(n) = args.threads {
        // Must happen before the first parallel kernel runs: the worker pool
        // reads HTC_NUM_THREADS once, lazily, on first use.
        std::env::set_var("HTC_NUM_THREADS", n.to_string());
    }

    let source = match read_network(&args.source) {
        Ok(network) => network,
        Err(e) => {
            eprintln!(
                "error: failed to read source network {:?}: {e}",
                args.source
            );
            return ExitCode::FAILURE;
        }
    };
    let target = match read_network(&args.target) {
        Ok(network) => network,
        Err(e) => {
            eprintln!(
                "error: failed to read target network {:?}: {e}",
                args.target
            );
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "aligning {} nodes / {} edges against {} nodes / {} edges ({} preset, {} orbit views, {} threads)",
        source.num_nodes(),
        source.num_edges(),
        target.num_nodes(),
        target.num_edges(),
        args.preset.name(),
        config.num_views(),
        htc::linalg::parallel::num_threads()
    );

    let result = match HtcAligner::new(config.clone()).align(&source, &target) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: alignment failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // With --json and no --output the anchor TSV has nowhere to go, so don't
    // pay for the matching / formatting at all.
    if args.output.is_some() || !args.json {
        let mut lines = String::from("source\ttarget\tscore\n");
        if args.one_to_one {
            // A Large-tier result carries top-k rows instead of a dense
            // matrix; the greedy matcher has a variant for each artifact.
            let matching = match result.top_k() {
                Some(topk) => greedy_matching_topk(topk),
                None => greedy_matching(result.alignment()),
            };
            for (s, t) in matching.pairs() {
                lines.push_str(&format!("{s}\t{t}\t{:.6}\n", result.score(s, t)));
            }
        } else {
            for (s, &t) in result.predicted_anchors().iter().enumerate() {
                lines.push_str(&format!("{s}\t{t}\t{:.6}\n", result.score(s, t)));
            }
        }
        match &args.output {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &lines) {
                    eprintln!("error: failed to write {path:?}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "wrote {} predicted anchors to {path:?}",
                    lines.lines().count() - 1
                );
            }
            None => print!("{lines}"),
        }
    }
    if args.json {
        println!("{}", json_summary(&args, &config, &result));
    } else {
        eprintln!("\nruntime decomposition:\n{}", result.timer().render());
    }
    ExitCode::SUCCESS
}
