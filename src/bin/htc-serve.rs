//! `htc-serve` — the long-running HTTP/JSON alignment daemon.
//!
//! Serves align requests over a fingerprint-keyed artifact cache: the first
//! request for a source graph pays orbit counting + training, every repeat
//! source skips straight to per-target fine-tuning, and concurrent
//! same-source requests are batched onto one `align_many` fan-out.
//! Connections are served by a bounded worker pool with HTTP keep-alive;
//! idle keep-alive sockets park in an epoll/kqueue reactor (workers are
//! occupied per in-flight request, not per connection), slow clients are
//! torn down on `--stall-timeout-ms` progress deadlines, `--peer-max-conns`
//! caps simultaneous connections per peer IP, and when the hand-off queue
//! is full readable connections are shed with `503 Retry-After`.  With
//! `--cache-dir`, cached artifacts spill to disk and a restarted daemon
//! warm-starts from them.
//!
//! ```text
//! htc-serve [--addr 127.0.0.1:8700] [--preset fast|small|paper|large]
//!           [--cache-capacity N] [--batch-window-ms N]
//!           [--artifact-root DIR] [--cache-dir DIR] [--threads N]
//!           [--workers N] [--queue-capacity N] [--keep-alive-secs N]
//!           [--stall-timeout-ms N] [--peer-max-conns N] [--sndbuf-bytes N]
//!           [--request-deadline-secs N] [--peer-rps N] [--fault-plan SPEC]
//!           [--shard-id N] [--max-nodes N]
//! ```
//!
//! Request-lifecycle hardening: `--request-deadline-secs` caps each
//! request's total time (queue wait + compute; `X-HTC-Deadline-Ms`
//! overrides per request, 0 disables), `--peer-rps` enables per-client
//! token-bucket rate limiting (identity: `X-HTC-Client` header or peer IP),
//! and `--fault-plan` / the `HTC_FAULT` environment variable (flag wins;
//! invalid env specs warn once and are ignored) inject deterministic faults
//! for chaos drills.
//!
//! The daemon prints `listening on <addr>` to stdout once the socket is
//! bound (scripts scrape this line for the resolved port) and runs until
//! `POST /shutdown` or a `SIGINT`/`SIGTERM` — all three take the same
//! deterministic drain (stop accepting, serve the queue, join workers).
//! `--shard-id` tags the process as one member of an `htc-fleet` (reported
//! on `/healthz`).  `--max-nodes` rejects requests whose networks exceed the
//! given node count with a structured `413 too_large` — the guard for
//! Large-tier (`--preset large`) deployments, where a single oversized
//! inline graph can occupy a worker for minutes.  See README.md for the
//! request format and a curl quickstart.

use htc::serve::{runtime::MAX_WORKERS, FaultPlan, Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct ServeArgs {
    config: ServerConfig,
    threads: Option<usize>,
}

fn print_usage() {
    eprintln!(
        "usage: htc-serve [--addr HOST:PORT] [--preset fast|small|paper|large] \
         [--cache-capacity N] [--batch-window-ms N] [--artifact-root DIR] \
         [--cache-dir DIR] [--threads N] [--workers N] [--queue-capacity N] \
         [--keep-alive-secs N] [--stall-timeout-ms N] [--peer-max-conns N] \
         [--sndbuf-bytes N] [--request-deadline-secs N] [--peer-rps N] \
         [--fault-plan SPEC] [--shard-id N] [--max-nodes N]"
    );
}

fn parse_cli<I: Iterator<Item = String>>(mut args: I) -> Result<ServeArgs, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:8700".into(),
        // The daemon defaults to a 30 s budget per request (queue wait +
        // compute); the embedded-server default stays "no deadline" so
        // library users opt in.  `--request-deadline-secs 0` restores that.
        request_deadline: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let mut threads = None;
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--preset" => {
                let name = value("--preset")?;
                if !matches!(name.as_str(), "fast" | "small" | "paper" | "large") {
                    return Err(format!(
                        "unknown preset {name:?} (expected fast|small|paper|large)"
                    ));
                }
                config.default_preset = name;
            }
            "--cache-capacity" => {
                config.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("bad --cache-capacity value: {e}"))?;
            }
            "--batch-window-ms" => {
                let ms: u64 = value("--batch-window-ms")?
                    .parse()
                    .map_err(|e| format!("bad --batch-window-ms value: {e}"))?;
                config.batch_window = Duration::from_millis(ms);
            }
            "--artifact-root" => {
                config.artifact_root = Some(PathBuf::from(value("--artifact-root")?));
            }
            "--cache-dir" => {
                config.cache_dir = Some(PathBuf::from(value("--cache-dir")?));
            }
            "--workers" => {
                let n: usize = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers value: {e}"))?;
                if n == 0 || n > MAX_WORKERS {
                    return Err(format!("--workers must be between 1 and {MAX_WORKERS}"));
                }
                config.workers = n;
            }
            "--queue-capacity" => {
                let n: usize = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("bad --queue-capacity value: {e}"))?;
                if n == 0 {
                    return Err("--queue-capacity must be at least 1".into());
                }
                config.queue_capacity = n;
            }
            "--keep-alive-secs" => {
                let secs: u64 = value("--keep-alive-secs")?
                    .parse()
                    .map_err(|e| format!("bad --keep-alive-secs value: {e}"))?;
                if secs == 0 {
                    return Err("--keep-alive-secs must be at least 1".into());
                }
                config.keep_alive = Duration::from_secs(secs);
            }
            "--stall-timeout-ms" => {
                let ms: u64 = value("--stall-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad --stall-timeout-ms value: {e}"))?;
                // 0 falls back to the standalone (30 s-class) read limits.
                config.stall_timeout = Duration::from_millis(ms);
            }
            "--peer-max-conns" => {
                // 0 keeps the cap disabled.
                config.peer_max_conns = value("--peer-max-conns")?
                    .parse()
                    .map_err(|e| format!("bad --peer-max-conns value: {e}"))?;
            }
            "--sndbuf-bytes" => {
                // 0 keeps the kernel default (autotuned) send buffer.
                config.sndbuf = value("--sndbuf-bytes")?
                    .parse()
                    .map_err(|e| format!("bad --sndbuf-bytes value: {e}"))?;
            }
            "--request-deadline-secs" => {
                let secs: u64 = value("--request-deadline-secs")?
                    .parse()
                    .map_err(|e| format!("bad --request-deadline-secs value: {e}"))?;
                // 0 disables the default budget (header overrides still work).
                config.request_deadline = Duration::from_secs(secs);
            }
            "--peer-rps" => {
                let rps: f64 = value("--peer-rps")?
                    .parse()
                    .map_err(|e| format!("bad --peer-rps value: {e}"))?;
                if !rps.is_finite() || rps < 0.0 {
                    return Err("--peer-rps must be a non-negative number".into());
                }
                config.fairness.peer_tokens_per_sec = rps;
            }
            "--shard-id" => {
                let id: usize = value("--shard-id")?
                    .parse()
                    .map_err(|e| format!("bad --shard-id value: {e}"))?;
                config.shard_id = Some(id);
            }
            "--max-nodes" => {
                // 0 keeps the default "unbounded" behaviour explicit.
                config.max_nodes = value("--max-nodes")?
                    .parse()
                    .map_err(|e| format!("bad --max-nodes value: {e}"))?;
            }
            "--fault-plan" => {
                let spec = value("--fault-plan")?;
                let plan =
                    FaultPlan::parse(&spec).map_err(|e| format!("bad --fault-plan value: {e}"))?;
                config.fault = Some(Arc::new(plan));
            }
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads value: {e}"))?;
                if n == 0 || n > htc::linalg::parallel::MAX_THREADS {
                    return Err(format!(
                        "--threads must be between 1 and {}",
                        htc::linalg::parallel::MAX_THREADS
                    ));
                }
                threads = Some(n);
            }
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(ServeArgs { config, threads })
}

fn main() -> ExitCode {
    let args = match parse_cli(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            print_usage();
            return ExitCode::from(2);
        }
    };
    if let Some(n) = args.threads {
        // Must happen before the first parallel kernel runs: the worker pool
        // reads HTC_NUM_THREADS once, lazily, on first use.
        std::env::set_var("HTC_NUM_THREADS", n.to_string());
    }
    let mut args = args;
    if args.config.fault.is_none() {
        // Environment fallback is wired here — not in Server::start — so
        // embedded servers (tests, examples) are immune to a stray HTC_FAULT.
        args.config.fault = FaultPlan::from_env();
    }
    if let Some(plan) = &args.config.fault {
        eprintln!("htc-serve: fault injection ACTIVE (seed {})", plan.seed());
    }
    let preset = args.config.default_preset.clone();
    let capacity = args.config.cache_capacity;
    let cache_dir = args.config.cache_dir.clone();
    let server = match Server::start(args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: failed to start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    // SIGINT/SIGTERM drain the server exactly like POST /shutdown — the
    // supervisor's way of stopping a shard without the HTTP side-channel.
    htc::serve::install_shutdown_handler(server.shutdown_signal());
    // Machine-scrapable; CI and scripts wait for this line.
    println!("listening on {}", server.addr());
    eprintln!(
        "htc-serve up: preset {preset}, cache capacity {capacity}{}, {} compute threads \
         (POST /shutdown to stop)",
        match &cache_dir {
            Some(dir) => format!(" (durable at {})", dir.display()),
            None => String::new(),
        },
        htc::linalg::parallel::num_threads()
    );
    server.join();
    eprintln!("htc-serve: shut down cleanly");
    ExitCode::SUCCESS
}
