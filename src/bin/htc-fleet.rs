//! `htc-fleet` — sharded multi-process serving behind one address.
//!
//! Spawns and supervises N `htc-serve` shard processes (restart-on-crash
//! with backoff, `/healthz`-probed) and fronts them with a consistent-hash
//! router: every align request's source fingerprint maps to one shard, so
//! each shard's artifact cache sees a disjoint, sticky slice of the source
//! population.  All shards share one `--cache-dir`; because artifacts are
//! fingerprint-named and bit-identical, any shard warm-starts any other
//! shard's sources after a failover or restart.
//!
//! ```text
//! htc-fleet [--addr 127.0.0.1:8800] [--shards N] [--cache-dir DIR]
//!           [--serve-bin PATH] [--workers N] [--queue-capacity N]
//!           [--keep-alive-secs N] [--health-interval-ms N]
//!           [--shard-arg ARG]...
//! ```
//!
//! `--shard-arg` is repeatable and passed through to every shard verbatim
//! (e.g. `--shard-arg --preset --shard-arg paper`).  `--serve-bin` defaults
//! to an `htc-serve` binary next to the `htc-fleet` executable.
//!
//! Prints `listening on <addr>` (the router) plus one
//! `shard <i> pid <p> listening on <addr>` line per shard to stdout; runs
//! until `POST /shutdown` or `SIGINT`/`SIGTERM`, then drains the whole
//! fleet: the router stops accepting and joins, each shard gets `SIGTERM`
//! (its own clean drain), and the supervisor joins every child — no
//! orphans.

use htc::fleet::{Router, RouterConfig, Supervisor, SupervisorConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct FleetArgs {
    supervisor: SupervisorConfig,
    router: RouterConfig,
}

fn print_usage() {
    eprintln!(
        "usage: htc-fleet [--addr HOST:PORT] [--shards N] [--cache-dir DIR] \
         [--serve-bin PATH] [--workers N] [--queue-capacity N] \
         [--keep-alive-secs N] [--health-interval-ms N] [--shard-arg ARG]..."
    );
}

/// The default shard binary: `htc-serve` next to this executable (the two
/// are built into the same target directory).
fn sibling_serve_bin() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|dir| dir.join("htc-serve")))
        .unwrap_or_else(|| PathBuf::from("htc-serve"))
}

fn parse_cli<I: Iterator<Item = String>>(mut args: I) -> Result<FleetArgs, String> {
    let mut supervisor = SupervisorConfig {
        serve_bin: sibling_serve_bin(),
        cache_dir: std::env::temp_dir().join(format!("htc-fleet-cache-{}", std::process::id())),
        ..SupervisorConfig::default()
    };
    let mut router = RouterConfig {
        addr: "127.0.0.1:8800".into(),
        ..RouterConfig::default()
    };
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--addr" => router.addr = value("--addr")?,
            "--shards" => {
                let n: usize = value("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards value: {e}"))?;
                if !(1..=64).contains(&n) {
                    return Err("--shards must be between 1 and 64".into());
                }
                supervisor.shards = n;
            }
            "--cache-dir" => supervisor.cache_dir = PathBuf::from(value("--cache-dir")?),
            "--serve-bin" => supervisor.serve_bin = PathBuf::from(value("--serve-bin")?),
            "--workers" => {
                let n: usize = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers value: {e}"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".into());
                }
                router.workers = n;
            }
            "--queue-capacity" => {
                let n: usize = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("bad --queue-capacity value: {e}"))?;
                if n == 0 {
                    return Err("--queue-capacity must be at least 1".into());
                }
                router.queue_capacity = n;
            }
            "--keep-alive-secs" => {
                let secs: u64 = value("--keep-alive-secs")?
                    .parse()
                    .map_err(|e| format!("bad --keep-alive-secs value: {e}"))?;
                if secs == 0 {
                    return Err("--keep-alive-secs must be at least 1".into());
                }
                router.keep_alive = Duration::from_secs(secs);
            }
            "--health-interval-ms" => {
                let ms: u64 = value("--health-interval-ms")?
                    .parse()
                    .map_err(|e| format!("bad --health-interval-ms value: {e}"))?;
                if ms == 0 {
                    return Err("--health-interval-ms must be at least 1".into());
                }
                supervisor.health_interval = Duration::from_millis(ms);
            }
            "--shard-arg" => supervisor.shard_args.push(value("--shard-arg")?),
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(FleetArgs { supervisor, router })
}

fn main() -> ExitCode {
    let args = match parse_cli(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            print_usage();
            return ExitCode::from(2);
        }
    };
    if !args.supervisor.serve_bin.exists() {
        eprintln!(
            "error: shard binary {:?} not found (set --serve-bin)",
            args.supervisor.serve_bin
        );
        return ExitCode::FAILURE;
    }
    let shards = args.supervisor.shards;
    let cache_dir = args.supervisor.cache_dir.clone();
    let supervisor = match Supervisor::start(args.supervisor) {
        Ok(supervisor) => supervisor,
        Err(e) => {
            eprintln!("error: failed to start supervisor: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !supervisor.wait_all_listening(Duration::from_secs(30)) {
        eprintln!("error: not every shard came up within 30s");
        supervisor.shutdown();
        return ExitCode::FAILURE;
    }
    let router = match Router::start(args.router, supervisor.shards()) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("error: failed to start router: {e}");
            supervisor.shutdown();
            return ExitCode::FAILURE;
        }
    };
    // SIGINT/SIGTERM drain the router exactly like POST /shutdown; the
    // supervisor tears the shards down after the router has finished.
    htc::serve::install_shutdown_handler(router.shutdown_signal());
    // Machine-scrapable; CI and scripts wait for this line (same format as
    // htc-serve so the scrape logic is shared).
    println!("listening on {}", router.addr());
    eprintln!(
        "htc-fleet up: {shards} shards, shared cache at {} (POST /shutdown to stop)",
        cache_dir.display()
    );
    // Fleet drain, in dependency order: the router stops accepting and joins
    // its workers first (no request can arrive for a stopping shard), then
    // every shard is SIGTERMed and every monitor joined.
    router.join();
    supervisor.shutdown();
    eprintln!("htc-fleet: shut down cleanly");
    ExitCode::SUCCESS
}
