//! Robustness of higher-order consistency to structural noise.
//!
//! ```text
//! cargo run --example robustness_study --release
//! ```
//!
//! This example reproduces the *mechanism* behind Fig. 9 at example scale: it
//! takes the Econ analogue, removes an increasing fraction of edges from the
//! target network and reports how the precision of the full HTC compares with
//! the low-order variant (HTC-L) as noise grows.  The multi-orbit-aware
//! encoder degrades more gracefully because missing edges remove some orbit
//! views of an edge but rarely all of them.

use htc::core::{HtcConfig, HtcVariant};
use htc::datasets::{generate_pair, Scale, SyntheticPairConfig};
use htc::metrics::precision_at_q;

fn main() {
    let mut base = HtcConfig::fast();
    base.epochs = 40;
    base.topology = htc::core::TopologyMode::Orbits {
        num_orbits: 9,
        weighting: htc::orbits::GomWeighting::Weighted,
    };

    println!(
        "{:<16} {:>12} {:>12}",
        "edge removal", "HTC p@1", "HTC-L p@1"
    );
    for ratio in [0.1, 0.3, 0.5] {
        // A reduced Econ-like pair keeps the example quick.
        let config = SyntheticPairConfig {
            num_nodes: 250,
            ..SyntheticPairConfig::econ(Scale::Small, ratio)
        };
        let pair = generate_pair(&config);

        // Each variant runs through its own session (`HtcVariant::session`
        // derives the variant configuration and opens it on the source).
        let full = HtcVariant::Full
            .session(&base, &pair.source)
            .expect("valid inputs")
            .align(&pair.target)
            .expect("valid inputs");
        let low = HtcVariant::LowOrder
            .session(&base, &pair.source)
            .expect("valid inputs")
            .align(&pair.target)
            .expect("valid inputs");

        let p_full = precision_at_q(full.alignment(), &pair.ground_truth, 1);
        let p_low = precision_at_q(low.alignment(), &pair.ground_truth, 1);
        println!("{:<16.1} {:>12.4} {:>12.4}", ratio, p_full, p_low);
    }
    println!("\nHigher-order consistency keeps more signal as structural noise grows.");
}
