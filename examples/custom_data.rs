//! Aligning your own networks from edge-list / attribute files.
//!
//! ```text
//! cargo run --example custom_data --release
//! ```
//!
//! The example writes two small attributed networks to disk in the crate's
//! plain-text format, reads them back (exactly what you would do with your
//! own data), aligns them with HTC, and prints the predicted anchor pairs
//! together with each prediction's alignment score.

use htc::core::{HtcAligner, HtcConfig};
use htc::graph::generators::{random_permutation, seeded_rng};
use htc::graph::io::{read_network, write_network};
use htc::graph::perturb::{permute_network, remove_edges};
use htc::graph::{AttributedNetwork, Graph};
use htc::linalg::DenseMatrix;

fn main() {
    let dir = std::env::temp_dir().join("htc_custom_data_example");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");

    // --- 1. Build a source network: a small collaboration graph. ---------
    let edges = [
        (0, 1),
        (0, 2),
        (1, 2), // a triangle of close collaborators
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 3), // a second cluster
        (5, 6),
        (6, 7),
        (7, 8),
        (8, 6), // a third cluster
        (1, 9),
        (9, 10),
        (10, 11),
        (11, 9),
        (4, 12),
        (12, 13),
        (13, 14),
        (14, 12),
    ];
    let graph = Graph::from_edges(15, &edges).expect("valid edge list");
    // Two attributes per node: seniority and field indicator.
    let attrs = DenseMatrix::from_rows(
        &(0..15)
            .map(|u| vec![(u % 5) as f64 / 4.0, if u % 2 == 0 { 1.0 } else { 0.0 }])
            .collect::<Vec<_>>(),
    )
    .expect("consistent rows");
    let source = AttributedNetwork::new(graph, attrs).expect("attribute rows match nodes");

    // --- 2. Derive a target network (noise + hidden relabelling). --------
    let mut rng = seeded_rng(11);
    let noisy = AttributedNetwork::new(
        remove_edges(source.graph(), 0.1, &mut rng),
        source.attributes().clone(),
    )
    .expect("node count unchanged");
    let perm = random_permutation(source.num_nodes(), &mut rng);
    let target = permute_network(&noisy, &perm);

    // --- 3. Round-trip both networks through the text format. ------------
    write_network(&source, &dir.join("source")).expect("write source");
    write_network(&target, &dir.join("target")).expect("write target");
    let source = read_network(&dir.join("source")).expect("read source");
    let target = read_network(&dir.join("target")).expect("read target");
    println!(
        "loaded source ({} nodes, {} edges) and target ({} nodes, {} edges) from {}",
        source.num_nodes(),
        source.num_edges(),
        target.num_nodes(),
        target.num_edges(),
        dir.display()
    );

    // --- 4. Align and report. ---------------------------------------------
    let mut config = HtcConfig::fast();
    config.epochs = 60;
    let result = HtcAligner::new(config)
        .align(&source, &target)
        .expect("valid inputs");
    let predictions = result.predicted_anchors();

    println!(
        "\n{:<12} {:<12} {:<10} correct?",
        "source node", "prediction", "score"
    );
    let mut correct = 0;
    for (s, &t) in predictions.iter().enumerate() {
        let truth = perm[s];
        if t == truth {
            correct += 1;
        }
        let verdict = if t == truth {
            "yes".to_string()
        } else {
            format!("no (true: {truth})")
        };
        println!(
            "{:<12} {:<12} {:<10.3} {}",
            s,
            t,
            result.alignment().get(s, t),
            verdict
        );
    }
    println!(
        "\nrecovered {correct}/{} hidden correspondences",
        source.num_nodes()
    );

    std::fs::remove_dir_all(&dir).ok();
}
