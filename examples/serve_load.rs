//! Load generator for `htc-serve`: N concurrent clients hammer `/align`
//! with a shared source graph for a fixed duration, then print throughput
//! and latency percentiles plus the server's runtime counters.
//!
//! ```text
//! cargo run --release --example serve_load -- [--clients N] [--duration-secs S]
//!     [--nodes N] [--workers N] [--addr HOST:PORT] [--close] [--hot-client]
//!     [--fleet N] [--sources K] [--idle-clients N] [--slow-writer]
//! ```
//!
//! Without `--addr` an in-process server is started (worker pool sized by
//! `--workers`, default auto).  `--close` opens a fresh connection per
//! request instead of reusing keep-alive sockets — the old one-shot
//! behaviour — which is how the before/after numbers in PERFORMANCE.md were
//! measured.  The `reuse_ratio` / `worker_panics` output lines are scraped
//! by the CI concurrency smoke step.
//!
//! Every client honours back-pressure: on 429/503/504 it sleeps for the
//! server's `retry_after_ms` hint (falling back to the `Retry-After` header,
//! then to exponential backoff), multiplied by a seeded jitter factor so runs
//! are deterministic.  Per-status-class counts are printed as a greppable
//! `status_classes:` line.
//!
//! `--hot-client` runs the fairness drill instead: an in-process server with
//! per-peer token buckets, `--clients` paced "victim" clients measured alone
//! (baseline phase) and then alongside one unpaced greedy client (loaded
//! phase).  The `fairness:` line reports the victims' p99 in both phases and
//! how often the hot client was rate-limited — CI asserts the ratio stays
//! bounded while the hot client is actually throttled.
//!
//! `--idle-clients N` parks an idle keep-alive population alongside the
//! live load: N extra connections that ping `/healthz` on a jittered 8–20 s
//! think time and otherwise sit parked in the reactor.  The run reports the
//! population's health (`idle_clients:` line — connected, pings, errors,
//! shed) and a mid-run `parked_vs_active:` sample from `/stats`, so the live
//! `latency_ms:` percentiles can be compared against an idle-free baseline.
//! Raise the fd ulimit before asking for thousands.
//!
//! `--slow-writer` runs the slow-client drill instead: an in-process server
//! with a short stall deadline, `--clients` live clients measured as usual,
//! and a procession of hostile writers that drip partial request heads at
//! the `stall_header` fault-site pace.  Every dripper must be torn down on
//! the deadline (greppable `slow_writer:` line), while live latencies stay
//! level.
//!
//! `--fleet N` runs the scale-out drill: N in-process shard servers sharing
//! one spill directory behind a consistent-hash [`Router`], hammered with
//! `--sources K` distinct source graphs so the load spreads across shards.
//! Responses carry `X-HTC-Shard`; the drill prints the per-shard request
//! distribution (`shard_distribution:` line) and *asserts* stickiness —
//! every source graph must be served by exactly the shard its fingerprint
//! hashes to.  502s are retryable in this mode (the router's mid-failover
//! signal) and show up in the `status_classes:` line.

use htc::datasets::{generate_pair, SyntheticPairConfig};
use htc::fleet::{owner, Router, RouterConfig, ShardSet};
use htc::serve::http::Client;
use htc::serve::json::{self, network_spec};
use htc::serve::{routing_fingerprint, FaultPlan, Server, ServerConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Victim cadence in the `--hot-client` drill: one request per 40 ms
/// (25 req/s), comfortably under the per-peer bucket below.
const VICTIM_PACE_MS: u64 = 40;
/// Per-peer token bucket for the drill: victims never hit it, the unpaced
/// hot client exhausts the burst and is throttled to the refill rate.
const DRILL_PEER_RPS: f64 = 50.0;
const DRILL_PEER_BURST: f64 = 16.0;
/// Backoff when the server gives no hint (connect refused, socket errors).
const BACKOFF_BASE_MS: u64 = 10;
const BACKOFF_MAX_MS: u64 = 500;
/// Idle-population think time: jittered 8–20 s — the population is *mostly*
/// idle, pinging rarely.  Together with the per-thread socket share below
/// this keeps the worst-case gap between pings on any one socket (think time
/// plus one serial sweep of the thread's other sockets) well under the
/// server's keep-alive, so parked pingers are never reaped as dead.
const IDLE_THINK_MIN_MS: u64 = 8000;
const IDLE_THINK_MAX_MS: u64 = 20000;
/// Sockets owned by one idle pinger thread.  Pings within a thread are
/// serial, so this bounds the sweep delay a due ping can suffer behind its
/// neighbours' round trips (500 × a loaded ~15 ms RTT ≈ 7.5 s worst case).
const IDLE_SOCKETS_PER_THREAD: usize = 500;
/// Keep-alive the in-process server uses when an idle population is
/// requested: think time + worst-case sweep delay must fit inside it.
const IDLE_KEEP_ALIVE_SECS: u64 = 60;
/// Connect ramp: one chunk per tick keeps the accept backlog comfortable
/// even when asking for tens of thousands of connections.
const IDLE_RAMP_CHUNK: usize = 100;
const IDLE_RAMP_TICK_MS: u64 = 10;
/// The slow-writer drill's server-side stall deadline.
const SLOW_WRITER_STALL_MS: u64 = 500;

struct LoadArgs {
    clients: usize,
    duration: Duration,
    nodes: usize,
    workers: usize,
    addr: Option<String>,
    close_per_request: bool,
    hot_client: bool,
    fleet: usize,
    sources: usize,
    idle_clients: usize,
    slow_writer: bool,
}

impl Default for LoadArgs {
    fn default() -> Self {
        Self {
            clients: 4,
            duration: Duration::from_secs(5),
            nodes: 12,
            workers: 0,
            addr: None,
            close_per_request: false,
            hot_client: false,
            fleet: 0,
            sources: 1,
            idle_clients: 0,
            slow_writer: false,
        }
    }
}

fn parse_args() -> Result<LoadArgs, String> {
    let mut args = LoadArgs::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("bad --clients: {e}"))?;
            }
            "--duration-secs" => {
                let secs: f64 = value("--duration-secs")?
                    .parse()
                    .map_err(|e| format!("bad --duration-secs: {e}"))?;
                args.duration = Duration::from_secs_f64(secs);
            }
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("bad --nodes: {e}"))?;
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--addr" => args.addr = Some(value("--addr")?),
            "--close" => args.close_per_request = true,
            "--hot-client" => args.hot_client = true,
            "--fleet" => {
                args.fleet = value("--fleet")?
                    .parse()
                    .map_err(|e| format!("bad --fleet: {e}"))?;
            }
            "--sources" => {
                args.sources = value("--sources")?
                    .parse()
                    .map_err(|e| format!("bad --sources: {e}"))?;
            }
            "--idle-clients" => {
                args.idle_clients = value("--idle-clients")?
                    .parse()
                    .map_err(|e| format!("bad --idle-clients: {e}"))?;
            }
            "--slow-writer" => args.slow_writer = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.clients == 0 {
        return Err("--clients must be at least 1".into());
    }
    if args.sources == 0 {
        return Err("--sources must be at least 1".into());
    }
    if args.hot_client && args.addr.is_some() {
        return Err("--hot-client runs its own in-process server; drop --addr".into());
    }
    if args.fleet > 0 && (args.addr.is_some() || args.hot_client) {
        return Err("--fleet runs its own in-process fleet; drop --addr/--hot-client".into());
    }
    if args.slow_writer && (args.addr.is_some() || args.hot_client || args.fleet > 0) {
        return Err(
            "--slow-writer runs its own in-process server; drop --addr/--hot-client/--fleet".into(),
        );
    }
    if args.idle_clients > 0 && (args.hot_client || args.fleet > 0 || args.slow_writer) {
        return Err("--idle-clients only combines with the plain load mode".into());
    }
    if args.fleet > 0 && args.sources == 1 {
        // One source pins every request to one shard; spread the keyspace so
        // the scale-out drill actually exercises the hash ring.
        args.sources = 4 * args.fleet;
    }
    Ok(args)
}

/// One exchange on an existing keep-alive connection.
fn exchange(
    client: &mut Client,
    method: &str,
    path: &str,
    body: &str,
    close: bool,
) -> Result<u16, String> {
    client
        .send_with(method, path, body, close)
        .map_err(|e| format!("send: {e}"))?;
    Ok(client.read()?.status)
}

/// What one client saw: latencies of successful requests (µs) and counts
/// per back-pressure status class.
#[derive(Default)]
struct ClientStats {
    latencies: Vec<u64>,
    ok: u64,
    rate_limited: u64, // 429
    unavailable: u64,  // 503
    deadline: u64,     // 504
    bad_gateway: u64,  // 502 — router-level retryable, fleet mode only
    other_errors: u64, // connect failures, io errors, unexpected statuses
    /// Requests served per shard id (fleet mode; from `X-HTC-Shard`).
    shard_requests: Vec<u64>,
    /// Which shard(s) each source index was observed on (fleet mode).
    source_shards: Vec<BTreeSet<usize>>,
}

impl ClientStats {
    fn merge(&mut self, mut other: ClientStats) {
        self.latencies.append(&mut other.latencies);
        self.ok += other.ok;
        self.rate_limited += other.rate_limited;
        self.unavailable += other.unavailable;
        self.deadline += other.deadline;
        self.bad_gateway += other.bad_gateway;
        self.other_errors += other.other_errors;
        if self.shard_requests.len() < other.shard_requests.len() {
            self.shard_requests.resize(other.shard_requests.len(), 0);
        }
        for (i, n) in other.shard_requests.iter().enumerate() {
            self.shard_requests[i] += n;
        }
        if self.source_shards.len() < other.source_shards.len() {
            self.source_shards
                .resize(other.source_shards.len(), BTreeSet::new());
        }
        for (i, shards) in other.source_shards.iter_mut().enumerate() {
            self.source_shards[i].append(shards);
        }
    }

    fn errors(&self) -> u64 {
        self.rate_limited + self.unavailable + self.deadline + self.bad_gateway + self.other_errors
    }

    fn record_shard(&mut self, shard: usize, source: usize) {
        if self.shard_requests.len() <= shard {
            self.shard_requests.resize(shard + 1, 0);
        }
        self.shard_requests[shard] += 1;
        if self.source_shards.len() <= source {
            self.source_shards.resize(source + 1, BTreeSet::new());
        }
        self.source_shards[source].insert(shard);
    }
}

/// How one client behaves: connection style, identity header, pacing, and
/// the seed for its (deterministic) backoff jitter.
struct ClientOpts {
    close_per_request: bool,
    identity: Option<String>,
    pace: Option<Duration>,
    seed: u64,
}

impl ClientOpts {
    fn plain(close_per_request: bool, seed: u64) -> Self {
        Self {
            close_per_request,
            identity: None,
            pace: None,
            seed,
        }
    }
}

/// The server's retry hint in milliseconds: the structured JSON body's
/// `retry_after_ms` if present, else the `Retry-After` header (seconds).
fn retry_hint_ms(response: &htc::serve::http::ClientResponse) -> Option<u64> {
    if let Some(ms) = json::parse(response.body_str())
        .ok()
        .and_then(|v| v.get("retry_after_ms").and_then(json::Json::as_f64))
    {
        return Some(ms.max(0.0) as u64);
    }
    response
        .header("retry-after")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(|secs| secs * 1000)
}

/// Per-client loop: requests until the deadline, honouring server retry
/// hints with seeded, jittered backoff.  With several bodies (fleet mode)
/// each request picks one deterministically at random, and the responding
/// shard (from `X-HTC-Shard`) is recorded per source.
fn run_client(
    addr: SocketAddr,
    bodies: Arc<Vec<String>>,
    deadline: Instant,
    opts: ClientOpts,
) -> ClientStats {
    let mut stats = ClientStats::default();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut backoff_ms = BACKOFF_BASE_MS;
    let mut conn: Option<Client> = None;
    let mut next_slot = Instant::now();
    let headers: Vec<(String, String)> = opts
        .identity
        .iter()
        .map(|id| ("X-HTC-Client".to_string(), id.clone()))
        .collect();

    // Jittered sleep, capped so the client never overshoots its deadline.
    let pause = |ms: u64, rng: &mut StdRng| {
        let jittered = (ms.max(1) as f64 * rng.gen_range(0.5..1.0)).max(1.0);
        let until_deadline = deadline.saturating_duration_since(Instant::now());
        std::thread::sleep(Duration::from_millis(jittered as u64).min(until_deadline));
    };

    while Instant::now() < deadline {
        if let Some(pace) = opts.pace {
            let now = Instant::now();
            if now < next_slot {
                std::thread::sleep(next_slot - now);
            }
            next_slot = next_slot.max(now) + pace;
        }
        if conn.is_none() {
            match Client::connect(addr) {
                Ok(c) => conn = Some(c),
                Err(_) => {
                    stats.other_errors += 1;
                    pause(backoff_ms, &mut rng);
                    backoff_ms = (backoff_ms * 2).min(BACKOFF_MAX_MS);
                    continue;
                }
            }
        }
        let client = conn.as_mut().expect("just connected");
        let header_refs: Vec<(&str, &str)> = headers
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let source = if bodies.len() == 1 {
            0
        } else {
            rng.gen_range(0..bodies.len())
        };
        let start = Instant::now();
        let response = client
            .send_with_headers(
                "POST",
                "/align",
                &bodies[source],
                opts.close_per_request,
                &header_refs,
            )
            .map_err(|e| format!("send: {e}"))
            .and_then(|()| client.read());
        match response {
            Ok(response) if (200..300).contains(&response.status) => {
                stats.ok += 1;
                stats.latencies.push(start.elapsed().as_micros() as u64);
                if let Some(shard) = response.header("x-htc-shard").and_then(|s| s.parse().ok()) {
                    stats.record_shard(shard, source);
                }
                backoff_ms = BACKOFF_BASE_MS;
            }
            Ok(response) if response.status == 502 => {
                // The router answers 502 with Retry-After while a shard is
                // down and not yet failed over / restarted — retryable.
                stats.bad_gateway += 1;
                let hint = retry_hint_ms(&response).unwrap_or(backoff_ms);
                pause(hint, &mut rng);
                backoff_ms = (backoff_ms * 2).min(BACKOFF_MAX_MS);
            }
            Ok(response) if matches!(response.status, 429 | 503 | 504) => {
                match response.status {
                    429 => stats.rate_limited += 1,
                    503 => stats.unavailable += 1,
                    _ => stats.deadline += 1,
                }
                // Shed connections are closed server-side; 429/504 keep the
                // socket alive.
                if response.status == 503 {
                    conn = None;
                }
                let hint = retry_hint_ms(&response).unwrap_or(backoff_ms);
                pause(hint, &mut rng);
                backoff_ms = (backoff_ms * 2).min(BACKOFF_MAX_MS);
            }
            Ok(_) | Err(_) => {
                stats.other_errors += 1;
                conn = None;
                pause(backoff_ms, &mut rng);
                backoff_ms = (backoff_ms * 2).min(BACKOFF_MAX_MS);
            }
        }
        if opts.close_per_request {
            conn = None;
        }
    }
    stats
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1000.0
}

fn align_body(nodes: usize) -> String {
    align_body_seeded(nodes, 41)
}

fn align_body_seeded(nodes: usize, seed: u64) -> String {
    let pair = generate_pair(&SyntheticPairConfig::tiny(nodes).with_seed(seed));
    format!(
        "{{\"preset\":\"fast\",\"epochs\":4,\"source\":{},\"target\":{}}}",
        network_spec(&pair.source),
        network_spec(&pair.target)
    )
}

/// The `--sources` distinct request bodies (one shared source graph each).
fn align_bodies(nodes: usize, sources: usize) -> Vec<String> {
    (0..sources)
        .map(|i| align_body_seeded(nodes, 41 + i as u64))
        .collect()
}

/// Warm the artifact cache so measurements see steady-state serving, not one
/// training run amortised arbitrarily across clients.
fn warmup(addr: SocketAddr, bodies: &[String]) {
    let mut client = Client::connect(addr).expect("warmup connect");
    for body in bodies {
        let status = exchange(&mut client, "POST", "/align", body, false).expect("warmup align");
        assert_eq!(status, 200, "warmup request failed");
    }
}

fn print_status_classes(stats: &ClientStats) {
    println!(
        "status_classes: 2xx={} 429={} 503={} 504={} 502={} other={}",
        stats.ok,
        stats.rate_limited,
        stats.unavailable,
        stats.deadline,
        stats.bad_gateway,
        stats.other_errors
    );
}

/// Scrape the server's own counters (greppable; CI asserts on these).
/// Retries a shed (non-200) scrape: right after a big idle population hangs
/// up, the dispatch queue can briefly fill with hangup wakeups and the first
/// stats probe may be turned away.
fn print_runtime_counters(addr: SocketAddr) {
    let mut response = None;
    for _ in 0..5 {
        let mut client = Client::connect(addr).expect("stats connect");
        let reply = client.request("GET", "/stats", "").expect("read stats");
        if reply.status == 200 {
            response = Some(reply);
            break;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    let response = response.expect("stats probe kept being shed");
    let stats = json::parse(response.body_str()).expect("parse stats");
    let num = |v: &json::Json, key: &str| v.get(key).and_then(json::Json::as_f64).unwrap_or(-1.0);
    // Older daemons have no runtime section; report what exists.
    if let Some(runtime) = stats.get("runtime") {
        println!("reuse_ratio: {:.2}", num(runtime, "reuse_ratio"));
        println!("worker_panics: {}", num(runtime, "worker_panics") as i64);
        println!(
            "shed_connections: {}",
            num(runtime, "shed_connections") as i64
        );
        println!("parked: {}", num(runtime, "parked") as i64);
        println!(
            "stall_timeouts_closed: {}",
            num(runtime, "stall_timeouts_closed") as i64
        );
    } else {
        println!("reuse_ratio: n/a (server reports no runtime section)");
    }
    if let Some(robustness) = stats.get("robustness") {
        println!(
            "server_rate_limited: {}",
            num(robustness, "rate_limited") as i64
        );
        println!(
            "server_deadline_expired: {}",
            num(robustness, "deadline_expired") as i64
        );
    }
}

fn shutdown(server: Server, addr: SocketAddr) {
    let mut client = Client::connect(addr).expect("shutdown connect");
    exchange(&mut client, "POST", "/shutdown", "", true).expect("shutdown");
    server.join();
}

/// An in-process fleet: shard servers sharing one spill directory behind a
/// consistent-hash router (same wiring as the `htc-fleet` binary, minus the
/// child processes — this drill measures routing, not supervision).
struct InProcessFleet {
    router: Router,
    shards: Vec<Server>,
    cache_dir: std::path::PathBuf,
}

impl InProcessFleet {
    fn start(shards: usize, workers: usize) -> InProcessFleet {
        let cache_dir = std::env::temp_dir().join(format!(
            "htc-serve-load-fleet-{}-{shards}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&cache_dir);
        std::fs::create_dir_all(&cache_dir).expect("create fleet spill dir");
        let servers: Vec<Server> = (0..shards)
            .map(|i| {
                Server::start(ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    cache_dir: Some(cache_dir.clone()),
                    shard_id: Some(i),
                    workers,
                    ..ServerConfig::default()
                })
                .expect("start shard server")
            })
            .collect();
        let set = Arc::new(ShardSet::new(shards));
        for (i, server) in servers.iter().enumerate() {
            set.incarnate(i, server.addr(), None);
        }
        let router = Router::start(RouterConfig::default(), set).expect("start router");
        InProcessFleet {
            router,
            shards: servers,
            cache_dir,
        }
    }

    fn teardown(self) {
        self.router.shutdown();
        for shard in self.shards {
            shard.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.cache_dir);
    }
}

/// Router-side counters (greppable, fleet mode).
fn print_fleet_counters(addr: SocketAddr) {
    let mut client = Client::connect(addr).expect("stats connect");
    let response = client.request("GET", "/stats", "").expect("read stats");
    let stats = json::parse(response.body_str()).expect("parse stats");
    let num = |v: &json::Json, key: &str| v.get(key).and_then(json::Json::as_f64).unwrap_or(-1.0);
    if let Some(router) = stats.get("router") {
        println!(
            "router_counters: proxied_ok={} failovers={} bad_gateway={} unroutable={}",
            num(router, "proxied_ok") as i64,
            num(router, "failovers") as i64,
            num(router, "bad_gateway") as i64,
            num(router, "unroutable") as i64,
        );
    }
    if let Some(fleet) = stats.get("fleet") {
        println!(
            "fleet_health: shards={} healthy={}",
            num(fleet, "shards") as i64,
            num(fleet, "healthy") as i64,
        );
    }
}

/// Fleet-mode epilogue: per-shard distribution and the stickiness assertion
/// — every source must have been served by exactly the shard its routing
/// fingerprint hashes to.
fn report_fleet(stats: &ClientStats, bodies: &[String], shards: usize) {
    let dist: Vec<String> = stats
        .shard_requests
        .iter()
        .enumerate()
        .map(|(shard, n)| format!("{shard}={n}"))
        .collect();
    println!("shard_distribution: {}", dist.join(" "));
    let mut sampled = 0usize;
    for (source, observed) in stats.source_shards.iter().enumerate() {
        if observed.is_empty() {
            continue; // never sampled inside the measurement window
        }
        sampled += 1;
        let expected = owner(
            routing_fingerprint(bodies[source].as_bytes()).expect("bodies carry a source"),
            shards,
        );
        assert!(
            observed.len() == 1 && observed.contains(&expected),
            "stickiness violated: source {source} expected shard {expected}, saw {observed:?}"
        );
    }
    println!("stickiness: ok ({sampled} sources, each pinned to its rendezvous shard)");
}

/// One drill phase: paced victims (plus optionally the unpaced hot client)
/// run until the deadline.  Returns (merged victim stats, hot stats).
fn drill_phase(
    addr: SocketAddr,
    body: &str,
    duration: Duration,
    victims: usize,
    with_hot: bool,
) -> (ClientStats, ClientStats) {
    let deadline = Instant::now() + duration;
    let bodies = Arc::new(vec![body.to_string()]);
    let victim_threads: Vec<_> = (0..victims)
        .map(|i| {
            let bodies = Arc::clone(&bodies);
            let opts = ClientOpts {
                close_per_request: false,
                identity: Some(format!("victim-{i}")),
                pace: Some(Duration::from_millis(VICTIM_PACE_MS)),
                seed: 0x5eed_0000 + i as u64,
            };
            std::thread::spawn(move || run_client(addr, bodies, deadline, opts))
        })
        .collect();
    let hot_thread = with_hot.then(|| {
        let bodies = Arc::clone(&bodies);
        let opts = ClientOpts {
            close_per_request: false,
            identity: Some("hot".to_string()),
            pace: None,
            seed: 0x0b5e_55ed,
        };
        std::thread::spawn(move || run_client(addr, bodies, deadline, opts))
    });
    let mut victim_stats = ClientStats::default();
    for thread in victim_threads {
        victim_stats.merge(thread.join().expect("victim thread"));
    }
    let hot_stats = hot_thread
        .map(|t| t.join().expect("hot thread"))
        .unwrap_or_default();
    (victim_stats, hot_stats)
}

/// What the idle keep-alive population saw.
#[derive(Default)]
struct IdleStats {
    requested: usize,
    connected: usize,
    connect_errors: usize,
    pings: u64,
    ping_errors: u64,
    shed: u64,
}

impl IdleStats {
    fn merge(&mut self, other: IdleStats) {
        self.requested += other.requested;
        self.connected += other.connected;
        self.connect_errors += other.connect_errors;
        self.pings += other.pings;
        self.ping_errors += other.ping_errors;
        self.shed += other.shed;
    }
}

/// One pinger thread: owns up to [`IDLE_SOCKETS_PER_THREAD`] keep-alive
/// connections, ramps them up in chunks, then pings each on its own
/// jittered think-time schedule until told to stop.  Between pings the
/// sockets sit parked in the server's reactor — the whole point of the
/// drill is that this population costs no workers.
fn run_idle_thread(
    addr: SocketAddr,
    count: usize,
    seed: u64,
    stop: Arc<AtomicBool>,
    settled: Arc<AtomicUsize>,
) -> IdleStats {
    let mut stats = IdleStats {
        requested: count,
        ..IdleStats::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let think = |rng: &mut StdRng| {
        Duration::from_millis(rng.gen_range(IDLE_THINK_MIN_MS..IDLE_THINK_MAX_MS))
    };
    let mut sockets: Vec<(Client, Instant)> = Vec::with_capacity(count);
    let mut opened = 0;
    while opened < count {
        let chunk = (count - opened).min(IDLE_RAMP_CHUNK);
        for _ in 0..chunk {
            match Client::connect(addr) {
                Ok(client) => {
                    stats.connected += 1;
                    let due = Instant::now() + think(&mut rng);
                    sockets.push((client, due));
                }
                Err(_) => stats.connect_errors += 1,
            }
            settled.fetch_add(1, Ordering::Relaxed);
        }
        opened += chunk;
        std::thread::sleep(Duration::from_millis(IDLE_RAMP_TICK_MS));
    }
    while !stop.load(Ordering::Relaxed) {
        let now = Instant::now();
        let mut next_due = now + Duration::from_millis(250);
        let mut i = 0;
        while i < sockets.len() {
            if sockets[i].1 > now {
                next_due = next_due.min(sockets[i].1);
                i += 1;
                continue;
            }
            match exchange(&mut sockets[i].0, "GET", "/healthz", "", false) {
                Ok(200) => {
                    stats.pings += 1;
                    // Reschedule from the fresh clock, not the sweep start:
                    // a long sweep must not compress the next think time.
                    sockets[i].1 = Instant::now() + think(&mut rng);
                    i += 1;
                }
                Ok(503) => {
                    // Shed under load: the server closed the socket.
                    stats.shed += 1;
                    sockets.swap_remove(i);
                }
                Ok(_) | Err(_) => {
                    stats.ping_errors += 1;
                    sockets.swap_remove(i);
                }
            }
        }
        let now = Instant::now();
        if next_due > now {
            // Bounded naps keep the stop latency low without busy-waiting.
            std::thread::sleep((next_due - now).min(Duration::from_millis(250)));
        }
    }
    stats
}

/// The parked idle population for `--idle-clients`: pinger threads plus the
/// signals to wait for ramp-up and to wind the population down.
struct IdlePopulation {
    threads: Vec<std::thread::JoinHandle<IdleStats>>,
    stop: Arc<AtomicBool>,
    settled: Arc<AtomicUsize>,
    requested: usize,
}

impl IdlePopulation {
    fn start(addr: SocketAddr, total: usize) -> IdlePopulation {
        let stop = Arc::new(AtomicBool::new(false));
        let settled = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        let mut remaining = total;
        let mut seed = 0x1d7e_0000u64;
        while remaining > 0 {
            let share = remaining.min(IDLE_SOCKETS_PER_THREAD);
            remaining -= share;
            let stop = Arc::clone(&stop);
            let settled = Arc::clone(&settled);
            seed += 1;
            threads.push(std::thread::spawn(move || {
                run_idle_thread(addr, share, seed, stop, settled)
            }));
        }
        IdlePopulation {
            threads,
            stop,
            settled,
            requested: total,
        }
    }

    /// Blocks until every connect attempt has resolved (or the timeout
    /// passes), so the live measurement starts against a fully parked
    /// population rather than mid-ramp.
    fn await_ready(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        while self.settled.load(Ordering::Relaxed) < self.requested && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn stop_and_join(self) -> IdleStats {
        self.stop.store(true, Ordering::Relaxed);
        let mut stats = IdleStats::default();
        for thread in self.threads {
            stats.merge(thread.join().expect("idle pinger thread"));
        }
        stats
    }
}

/// One `/stats` sample of the runtime occupancy gauges.
fn sample_parked(addr: SocketAddr) -> (i64, i64) {
    let sample = Client::connect(addr)
        .ok()
        .and_then(|mut c| c.request("GET", "/stats", "").ok())
        .and_then(|r| json::parse(r.body_str()).ok());
    let gauge = |key: &str| {
        sample
            .as_ref()
            .and_then(|s| s.get("runtime"))
            .and_then(|r| r.get(key))
            .and_then(json::Json::as_f64)
            .map_or(-1, |v| v as i64)
    };
    (gauge("parked"), gauge("active_connections"))
}

/// The `--slow-writer` drill: live clients measured as usual while a
/// procession of hostile writers drips partial request heads at the
/// `stall_header` fault-site pace.  Every dripper must be torn down on the
/// server's stall deadline — not after the 30 s standalone budget, and
/// never by wedging a worker.
fn slow_writer_drill(args: &LoadArgs) {
    let server = Server::start(ServerConfig {
        workers: args.workers,
        stall_timeout: Duration::from_millis(SLOW_WRITER_STALL_MS),
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = server.addr();
    let body = align_body(args.nodes);
    warmup(addr, std::slice::from_ref(&body));

    println!(
        "serve_load: slow-writer drill, {} live clients + header drippers, {:.1}s, \
         stall deadline {SLOW_WRITER_STALL_MS}ms",
        args.clients,
        args.duration.as_secs_f64()
    );

    let deadline = Instant::now() + args.duration;
    let bodies = Arc::new(vec![body]);
    let live: Vec<_> = (0..args.clients)
        .map(|i| {
            let bodies = Arc::clone(&bodies);
            let opts = ClientOpts::plain(false, 0x51de_0000 + i as u64);
            std::thread::spawn(move || run_client(addr, bodies, deadline, opts))
        })
        .collect();

    // The drippers run serially on this thread: each connects, feeds header
    // bytes at the fault site's pace (far slower than the deadline allows a
    // head to complete), and measures how long the server lets it live.
    let plan = FaultPlan::parse("seed=11,stall_header=1@100").expect("valid fault plan");
    let mut writers = 0u64;
    let mut torn_down = 0u64;
    let mut max_teardown_ms = 0u64;
    while Instant::now() < deadline {
        let pace = plan
            .stall_header_delay()
            .expect("stall_header=1 always fires");
        let Ok(mut socket) = TcpStream::connect(addr) else {
            break;
        };
        writers += 1;
        let started = Instant::now();
        let mut head_complete = true;
        for byte in b"GET /healthz HTTP/1.1\r\nHost: drip\r\n\r\n" {
            if socket.write_all(&[*byte]).is_err() {
                head_complete = false;
                break;
            }
            std::thread::sleep(pace);
        }
        let _ = socket.set_read_timeout(Some(Duration::from_secs(5)));
        let mut tail = String::new();
        let read = socket.read_to_string(&mut tail);
        let elapsed = started.elapsed();
        let torn =
            !head_complete || read.is_err() || tail.is_empty() || tail.starts_with("HTTP/1.1 408");
        if torn && elapsed < Duration::from_millis(SLOW_WRITER_STALL_MS * 8) {
            torn_down += 1;
            max_teardown_ms = max_teardown_ms.max(elapsed.as_millis() as u64);
        }
    }

    let mut stats = ClientStats::default();
    for thread in live {
        stats.merge(thread.join().expect("live client"));
    }
    stats.latencies.sort_unstable();
    println!("requests: {} ok, {} errors", stats.ok, stats.errors());
    println!(
        "latency_ms: p50 {:.2} p95 {:.2} p99 {:.2}",
        percentile(&stats.latencies, 0.50),
        percentile(&stats.latencies, 0.95),
        percentile(&stats.latencies, 0.99),
    );
    println!(
        "slow_writer: writers={writers} torn_down={torn_down} max_teardown_ms={max_teardown_ms}"
    );
    print_status_classes(&stats);
    print_runtime_counters(addr);
    shutdown(server, addr);
}

/// The `--hot-client` fairness drill: baseline victims alone, then victims
/// next to one greedy client against a rate-limiting server.
fn hot_client_drill(args: &LoadArgs) {
    // Every drill client holds a keep-alive connection, and a worker serves
    // one connection at a time — size the pool so nobody starves in the
    // accept queue and the measurement isolates the *rate limiter*.
    let workers = if args.workers == 0 {
        args.clients + 2
    } else {
        args.workers
    };
    let mut config = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    config.fairness.peer_tokens_per_sec = DRILL_PEER_RPS;
    config.fairness.peer_burst = DRILL_PEER_BURST;
    let server = Server::start(config).expect("start server");
    let addr = server.addr();

    let body = align_body(args.nodes);
    warmup(addr, std::slice::from_ref(&body));

    println!(
        "serve_load: hot-client drill, {} victims + 1 hot, {:.1}s per phase, \
         peer bucket {DRILL_PEER_RPS:.0} req/s burst {DRILL_PEER_BURST:.0}",
        args.clients,
        args.duration.as_secs_f64()
    );

    let (baseline, _) = drill_phase(addr, &body, args.duration, args.clients, false);
    let (loaded, hot) = drill_phase(addr, &body, args.duration, args.clients, true);

    let mut baseline_lat = baseline.latencies.clone();
    baseline_lat.sort_unstable();
    let mut loaded_lat = loaded.latencies.clone();
    loaded_lat.sort_unstable();
    let baseline_p99 = percentile(&baseline_lat, 0.99);
    let victim_p99 = percentile(&loaded_lat, 0.99);
    let ratio = if baseline_p99 > 0.0 {
        victim_p99 / baseline_p99
    } else {
        0.0
    };

    println!(
        "baseline: {} ok, {} errors, p50 {:.2} p99 {:.2}",
        baseline.ok,
        baseline.errors(),
        percentile(&baseline_lat, 0.50),
        baseline_p99
    );
    println!(
        "loaded: victims {} ok, {} errors; hot {} ok, {} rate-limited",
        loaded.ok,
        loaded.errors(),
        hot.ok,
        hot.rate_limited
    );
    println!(
        "fairness: baseline_p99_ms={baseline_p99:.2} victim_p99_ms={victim_p99:.2} \
         ratio={ratio:.2} hot_rate_limited={}",
        hot.rate_limited
    );
    let mut combined = ClientStats::default();
    combined.merge(loaded);
    combined.merge(hot);
    print_status_classes(&combined);
    print_runtime_counters(addr);
    shutdown(server, addr);
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    if args.hot_client {
        hot_client_drill(&args);
        return;
    }
    if args.slow_writer {
        slow_writer_drill(&args);
        return;
    }

    // An in-process fleet or server unless an external one was named.
    let fleet = (args.fleet > 0).then(|| InProcessFleet::start(args.fleet, args.workers));
    let server = if args.addr.is_none() && fleet.is_none() {
        let mut config = ServerConfig {
            workers: args.workers,
            ..ServerConfig::default()
        };
        if args.idle_clients > 0 {
            // The idle population's ping gap (think time + sweep delay) must
            // stay inside the keep-alive window, or the server reaps healthy
            // pingers as dead and the drill measures its own cadence bug.
            config.keep_alive = config
                .keep_alive
                .max(Duration::from_secs(IDLE_KEEP_ALIVE_SECS));
        }
        Some(Server::start(config).expect("start server"))
    } else {
        None
    };
    let addr: SocketAddr = match (&args.addr, &fleet, &server) {
        (Some(addr), _, _) => addr.parse().expect("--addr must be HOST:PORT"),
        (None, Some(fleet), _) => fleet.router.addr(),
        (None, None, Some(server)) => server.addr(),
        (None, None, None) => unreachable!(),
    };

    let bodies = Arc::new(align_bodies(args.nodes, args.sources));
    warmup(addr, &bodies);

    // The idle population parks fully before the live clock starts, so the
    // percentiles measure serving *over* N parked connections, not the ramp.
    let idle = (args.idle_clients > 0).then(|| IdlePopulation::start(addr, args.idle_clients));
    if let Some(idle) = &idle {
        idle.await_ready(Duration::from_secs(120));
    }

    let deadline = Instant::now() + args.duration;
    let started = Instant::now();
    // Mid-run occupancy sample: how many connections sat parked in the
    // reactor while the live load ran.
    let sampler = idle.is_some().then(|| {
        let half = args.duration / 2;
        std::thread::spawn(move || {
            std::thread::sleep(half);
            sample_parked(addr)
        })
    });
    let clients: Vec<_> = (0..args.clients)
        .map(|i| {
            let bodies = Arc::clone(&bodies);
            let opts = ClientOpts::plain(args.close_per_request, 0x10ad_0000 + i as u64);
            std::thread::spawn(move || run_client(addr, bodies, deadline, opts))
        })
        .collect();
    let mut stats = ClientStats::default();
    for client in clients {
        stats.merge(client.join().expect("client thread"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    stats.latencies.sort_unstable();
    let parked_sample = sampler.map(|t| t.join().expect("stats sampler"));
    let idle_stats = idle.map(IdlePopulation::stop_and_join);

    println!(
        "serve_load: {} clients, {:.1}s, {}{}{}",
        args.clients,
        args.duration.as_secs_f64(),
        if args.close_per_request {
            "connection-per-request"
        } else {
            "keep-alive"
        },
        if args.fleet > 0 {
            format!(", fleet of {} shards, {} sources", args.fleet, args.sources)
        } else {
            String::new()
        },
        if args.idle_clients > 0 {
            format!(", {} idle keep-alive clients", args.idle_clients)
        } else {
            String::new()
        }
    );
    println!("requests: {} ok, {} errors", stats.ok, stats.errors());
    println!(
        "throughput: {:.1} req/s",
        stats.ok as f64 / elapsed.max(1e-9)
    );
    println!(
        "latency_ms: p50 {:.2} p95 {:.2} p99 {:.2}",
        percentile(&stats.latencies, 0.50),
        percentile(&stats.latencies, 0.95),
        percentile(&stats.latencies, 0.99),
    );
    if let Some(idle_stats) = &idle_stats {
        println!(
            "idle_clients: requested={} connected={} connect_errors={} pings={} \
             ping_errors={} shed={}",
            idle_stats.requested,
            idle_stats.connected,
            idle_stats.connect_errors,
            idle_stats.pings,
            idle_stats.ping_errors,
            idle_stats.shed
        );
    }
    if let Some((parked, active)) = parked_sample {
        println!("parked_vs_active: parked={parked} active={active}");
    }
    print_status_classes(&stats);
    if let Some(fleet) = &fleet {
        report_fleet(&stats, &bodies, fleet.shards.len());
        print_fleet_counters(addr);
    } else {
        print_runtime_counters(addr);
    }

    if let Some(fleet) = fleet {
        fleet.teardown();
    } else if let Some(server) = server {
        shutdown(server, addr);
    }
}
