//! Load generator for `htc-serve`: N concurrent clients hammer `/align`
//! with a shared source graph for a fixed duration, then print throughput
//! and latency percentiles plus the server's runtime counters.
//!
//! ```text
//! cargo run --release --example serve_load -- [--clients N] [--duration-secs S]
//!     [--nodes N] [--workers N] [--addr HOST:PORT] [--close]
//! ```
//!
//! Without `--addr` an in-process server is started (worker pool sized by
//! `--workers`, default auto).  `--close` opens a fresh connection per
//! request instead of reusing keep-alive sockets — the old one-shot
//! behaviour — which is how the before/after numbers in PERFORMANCE.md were
//! measured.  The `reuse_ratio` / `worker_panics` output lines are scraped
//! by the CI concurrency smoke step.

use htc::datasets::{generate_pair, SyntheticPairConfig};
use htc::serve::http::Client;
use htc::serve::json::{self, network_spec};
use htc::serve::{Server, ServerConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

struct LoadArgs {
    clients: usize,
    duration: Duration,
    nodes: usize,
    workers: usize,
    addr: Option<String>,
    close_per_request: bool,
}

impl Default for LoadArgs {
    fn default() -> Self {
        Self {
            clients: 4,
            duration: Duration::from_secs(5),
            nodes: 12,
            workers: 0,
            addr: None,
            close_per_request: false,
        }
    }
}

fn parse_args() -> Result<LoadArgs, String> {
    let mut args = LoadArgs::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("bad --clients: {e}"))?;
            }
            "--duration-secs" => {
                let secs: f64 = value("--duration-secs")?
                    .parse()
                    .map_err(|e| format!("bad --duration-secs: {e}"))?;
                args.duration = Duration::from_secs_f64(secs);
            }
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("bad --nodes: {e}"))?;
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--addr" => args.addr = Some(value("--addr")?),
            "--close" => args.close_per_request = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.clients == 0 {
        return Err("--clients must be at least 1".into());
    }
    Ok(args)
}

/// One exchange on an existing keep-alive connection.
fn exchange(
    client: &mut Client,
    method: &str,
    path: &str,
    body: &str,
    close: bool,
) -> Result<u16, String> {
    client
        .send_with(method, path, body, close)
        .map_err(|e| format!("send: {e}"))?;
    Ok(client.read()?.status)
}

/// Per-client loop: requests until the deadline, collecting latencies (µs).
fn run_client(
    addr: SocketAddr,
    body: String,
    deadline: Instant,
    close_per_request: bool,
) -> (Vec<u64>, u64) {
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    let mut conn = None;
    while Instant::now() < deadline {
        if conn.is_none() {
            match Client::connect(addr) {
                Ok(c) => conn = Some(c),
                Err(_) => {
                    errors += 1;
                    continue;
                }
            }
        }
        let client = conn.as_mut().expect("just connected");
        let start = Instant::now();
        match exchange(client, "POST", "/align", &body, close_per_request) {
            Ok(200) => latencies.push(start.elapsed().as_micros() as u64),
            Ok(503) => {
                // Shed under load: back off briefly and reconnect.
                errors += 1;
                conn = None;
                std::thread::sleep(Duration::from_millis(10));
            }
            Ok(_) | Err(_) => {
                errors += 1;
                conn = None;
            }
        }
        if close_per_request {
            conn = None;
        }
    }
    (latencies, errors)
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1000.0
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    // An in-process server unless an external one was named.
    let server = if args.addr.is_none() {
        Some(
            Server::start(ServerConfig {
                workers: args.workers,
                ..ServerConfig::default()
            })
            .expect("start server"),
        )
    } else {
        None
    };
    let addr: SocketAddr = match (&args.addr, &server) {
        (Some(addr), _) => addr.parse().expect("--addr must be HOST:PORT"),
        (None, Some(server)) => server.addr(),
        (None, None) => unreachable!(),
    };

    let pair = generate_pair(&SyntheticPairConfig::tiny(args.nodes).with_seed(41));
    let body = format!(
        "{{\"preset\":\"fast\",\"epochs\":4,\"source\":{},\"target\":{}}}",
        network_spec(&pair.source),
        network_spec(&pair.target)
    );

    // Warm the artifact cache so the measurement sees steady-state serving,
    // not one training run amortised arbitrarily across clients.
    {
        let mut client = Client::connect(addr).expect("warmup connect");
        let status = exchange(&mut client, "POST", "/align", &body, true).expect("warmup align");
        assert_eq!(status, 200, "warmup request failed");
    }

    let deadline = Instant::now() + args.duration;
    let started = Instant::now();
    let clients: Vec<_> = (0..args.clients)
        .map(|_| {
            let body = body.clone();
            let close = args.close_per_request;
            std::thread::spawn(move || run_client(addr, body, deadline, close))
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for client in clients {
        let (mut lat, errs) = client.join().expect("client thread");
        latencies.append(&mut lat);
        errors += errs;
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();

    println!(
        "serve_load: {} clients, {:.1}s, {}",
        args.clients,
        args.duration.as_secs_f64(),
        if args.close_per_request {
            "connection-per-request"
        } else {
            "keep-alive"
        }
    );
    println!("requests: {} ok, {errors} errors", latencies.len());
    println!(
        "throughput: {:.1} req/s",
        latencies.len() as f64 / elapsed.max(1e-9)
    );
    println!(
        "latency_ms: p50 {:.2} p95 {:.2} p99 {:.2}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );

    // Scrape the server's own counters (greppable; CI asserts on these).
    let mut client = Client::connect(addr).expect("stats connect");
    let response = client.request("GET", "/stats", "").expect("read stats");
    let stats = json::parse(response.body_str()).expect("parse stats");
    // Older daemons have no runtime section; report what exists.
    if let Some(runtime) = stats.get("runtime") {
        let num =
            |v: &json::Json, key: &str| v.get(key).and_then(json::Json::as_f64).unwrap_or(-1.0);
        println!("reuse_ratio: {:.2}", num(runtime, "reuse_ratio"));
        println!("worker_panics: {}", num(runtime, "worker_panics") as i64);
        println!(
            "shed_connections: {}",
            num(runtime, "shed_connections") as i64
        );
    } else {
        println!("reuse_ratio: n/a (server reports no runtime section)");
    }

    if let Some(server) = server {
        let mut client = Client::connect(addr).expect("shutdown connect");
        exchange(&mut client, "POST", "/shutdown", "", true).expect("shutdown");
        server.join();
    }
}
