//! Quickstart: align a small synthetic network pair with HTC.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! The example generates a source network, derives a target network by
//! removing a few edges and hiding the node identities behind a random
//! permutation, runs the full HTC pipeline stage by stage through an
//! [`AlignmentSession`] and evaluates the recovered alignment against the
//! known ground truth.

use htc::core::{AlignmentSession, HtcConfig};
use htc::datasets::{generate_pair, SyntheticPairConfig};
use htc::metrics::AlignmentReport;

fn main() {
    // 1. Generate a pair of attributed networks with known ground truth.
    let config = SyntheticPairConfig {
        edge_removal: 0.1,
        ..SyntheticPairConfig::tiny(60)
    };
    let pair = generate_pair(&config);
    println!(
        "generated '{}': source {} nodes / {} edges, target {} nodes / {} edges",
        pair.name,
        pair.source.num_nodes(),
        pair.source.num_edges(),
        pair.target.num_nodes(),
        pair.target.num_edges()
    );

    // 2. Align with HTC, advancing the pipeline stage by stage so each
    //    artifact can be inspected (`session.align(..)` or
    //    `HtcAligner::align` collapse the same stages into one call).
    //    `HtcConfig::fast()` keeps the run to a couple of seconds; use
    //    `HtcConfig::paper()` for the full-strength settings.
    let mut htc_config = HtcConfig::fast();
    htc_config.epochs = 40;
    let mut session = AlignmentSession::new(htc_config, &pair.source)
        .expect("the generated pair satisfies HTC's input contract");
    let mut staged = session
        .begin(&pair.target)
        .expect("target matches the source contract");
    let (source_views, _) = staged.topology_views().expect("orbit counting succeeds");
    println!(
        "stage 1: counted {} orbit views per graph",
        source_views.num_views()
    );
    let trained = staged.train().expect("training succeeds");
    println!(
        "stage 3: trained the shared encoder, loss {:.4} -> {:.4}",
        trained.loss_history()[0],
        trained.loss_history().last().unwrap()
    );
    let result = staged
        .finish()
        .expect("fine-tuning and integration succeed");

    // 3. Inspect the result.
    let report = AlignmentReport::evaluate(result.alignment(), &pair.ground_truth, &[1, 5, 10]);
    println!("alignment quality: {report}");
    println!("trusted pairs per orbit: {:?}", result.trusted_counts());
    println!(
        "most important orbit: orbit {}",
        result
            .orbit_importance()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(k, _)| k)
            .unwrap_or(0)
    );
    println!("\nruntime decomposition:\n{}", result.timer().render());

    // 4. The predicted anchor of any source node is one argmax away.
    let predictions = result.predicted_anchors();
    println!(
        "source node 0 is predicted to align with target node {}",
        predictions[0]
    );
}
