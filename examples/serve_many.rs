//! One-vs-many serving: align one catalog graph against a stream of incoming
//! graphs, paying orbit counting and encoder training **once**.
//!
//! ```text
//! cargo run --example serve_many --release
//! ```
//!
//! The paper's runtime decomposition (Fig. 8) shows orbit counting and
//! multi-orbit-aware training dominate the pipeline.  Both depend only on the
//! source side in a serving deployment, so `AlignmentSession` computes them
//! once and fans per-target fine-tuning + integration out on the worker pool.
//! The example also persists the trained encoder and reloads it into a second
//! session — the cross-process warm-start path.

use htc::core::pipeline::stages;
use htc::core::{AlignmentSession, HtcConfig, ProgressObserver, TrainedEncoder};
use htc::datasets::{generate_pair, SyntheticPairConfig};
use htc::graph::generators::{random_permutation, seeded_rng};
use htc::graph::perturb::{permute_network, remove_edges};
use htc::graph::AttributedNetwork;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Prints one line per pipeline stage as the session advances.
struct StderrProgress;

impl ProgressObserver for StderrProgress {
    fn on_stage_end(&self, stage: &str, elapsed: Duration) {
        eprintln!("  [session] {stage}: {:.3}s", elapsed.as_secs_f64());
    }

    fn on_target_end(&self, index: usize, total: usize) {
        eprintln!("  [session] served target {}/{total}", index + 1);
    }
}

/// Derives an incoming graph from the catalog: drop some edges, relabel the
/// nodes behind a hidden permutation.
fn incoming_variant(catalog: &AttributedNetwork, seed: u64) -> AttributedNetwork {
    let mut rng = seeded_rng(seed);
    let noisy = AttributedNetwork::new(
        remove_edges(catalog.graph(), 0.08, &mut rng),
        catalog.attributes().clone(),
    )
    .expect("node count unchanged");
    let perm = random_permutation(catalog.num_nodes(), &mut rng);
    permute_network(&noisy, &perm)
}

fn main() {
    // The "catalog" graph all traffic is aligned against.
    let pair = generate_pair(&SyntheticPairConfig {
        num_nodes: 120,
        ..SyntheticPairConfig::tiny(120)
    });
    let catalog = pair.source;
    let targets: Vec<AttributedNetwork> = (0..4)
        .map(|i| incoming_variant(&catalog, 100 + i))
        .collect();
    println!(
        "catalog graph: {} nodes / {} edges; serving {} incoming graphs",
        catalog.num_nodes(),
        catalog.num_edges(),
        targets.len()
    );

    let mut config = HtcConfig::fast();
    config.epochs = 30;

    // --- 1. Open a session and serve the whole batch. ---------------------
    let mut session = AlignmentSession::new(config.clone(), &catalog)
        .expect("valid configuration and catalog")
        .with_observer(Arc::new(StderrProgress));
    let start = Instant::now();
    let results = session.align_many(&targets).expect("serving succeeds");
    let batch_time = start.elapsed();

    println!("\nper-target results (source-side stages paid once up front):");
    for (i, result) in results.iter().enumerate() {
        println!(
            "  target {i}: {:?} alignment, {} trusted pairs, {:.3}s target-side work",
            result.alignment().shape(),
            result.trusted_counts().iter().sum::<usize>(),
            result.timer().total().as_secs_f64()
        );
    }
    println!(
        "\nshared source-side stages ({} total):",
        format_args!("{:.3}s", session.timer().total().as_secs_f64())
    );
    print!("{}", session.timer().render());
    println!(
        "batch wall clock: {:.3}s for {} targets; training ran {} time(s)",
        batch_time.as_secs_f64(),
        targets.len(),
        session.timer().count(stages::TRAINING)
    );

    // --- 2. Serving more traffic reuses every cached artifact. ------------
    let start = Instant::now();
    let _again = session.align_shared(&targets[0]).expect("serving succeeds");
    println!(
        "follow-up request: {:.3}s (no recounting, no retraining — counts stay at {}/{})",
        start.elapsed().as_secs_f64(),
        session.timer().count(stages::ORBIT_COUNTING),
        session.timer().count(stages::TRAINING)
    );

    // --- 3. Persist the trained encoder for a warm start elsewhere. -------
    let model_path = std::env::temp_dir().join("htc_serve_many_encoder.bin");
    session
        .train()
        .expect("already trained")
        .save(&model_path)
        .expect("artifact path is writable");
    let mut warm = AlignmentSession::new(config, &catalog).expect("valid inputs");
    warm.set_encoder(TrainedEncoder::load(&model_path).expect("artifact round-trips"))
        .expect("artifact matches the session");
    let start = Instant::now();
    let warm_result = warm.align_shared(&targets[0]).expect("serving succeeds");
    println!(
        "warm-started process: first request in {:.3}s without any training \
         (bit-identical: {})",
        start.elapsed().as_secs_f64(),
        warm_result
            .alignment()
            .approx_eq(results[0].alignment(), 0.0)
    );
    std::fs::remove_file(&model_path).ok();
}
