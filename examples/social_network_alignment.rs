//! Social-network user matching: the motivating scenario of the paper's
//! introduction (finding the same user across two social platforms to drive
//! friend suggestion and recommendation).
//!
//! ```text
//! cargo run --example social_network_alignment --release
//! ```
//!
//! The example uses the Douban Online/Offline analogue, runs HTC and two
//! representative baselines (the unsupervised GAlign and the supervised
//! FINAL with 10 % seed anchors) and prints a small comparison table.

use htc::baselines::{Aligner, Final, GAlign};
use htc::core::{AlignmentSession, HtcConfig};
use htc::datasets::{generate_pair, DatasetPreset, Scale};
use htc::graph::generators::seeded_rng;
use htc::graph::perturb::GroundTruth;
use htc::metrics::AlignmentReport;
use std::time::Instant;

fn main() {
    let pair = generate_pair(&DatasetPreset::Douban.config(Scale::Small));
    println!(
        "dataset '{}': {} source users, {} target users, {} known anchor links",
        pair.name,
        pair.source.num_nodes(),
        pair.target.num_nodes(),
        pair.num_anchors()
    );

    // --- HTC (fully unsupervised) ---------------------------------------
    // A session keeps the source-side artifacts around: aligning a second
    // platform against the same user base would skip orbit counting.
    let mut config = HtcConfig::small();
    config.epochs = 40;
    let mut session = AlignmentSession::new(config, &pair.source).expect("valid configuration");
    let start = Instant::now();
    let htc_result = session.align(&pair.target).expect("valid inputs");
    let htc_time = start.elapsed();
    let htc_report =
        AlignmentReport::evaluate(htc_result.alignment(), &pair.ground_truth, &[1, 10]);

    // --- GAlign (unsupervised baseline) ----------------------------------
    let galign = GAlign::new(42);
    let no_seeds = GroundTruth::new(vec![None; pair.source.num_nodes()]);
    let start = Instant::now();
    let galign_alignment = galign
        .align(&pair.source, &pair.target, &no_seeds)
        .expect("valid inputs");
    let galign_time = start.elapsed();
    let galign_report = AlignmentReport::evaluate(&galign_alignment, &pair.ground_truth, &[1, 10]);

    // --- FINAL (supervised baseline, 10 % seeds) --------------------------
    let mut rng = seeded_rng(42);
    let seeds = pair.ground_truth.sample_fraction(0.1, &mut rng);
    let final_method = Final::default();
    let start = Instant::now();
    let final_alignment = final_method
        .align(&pair.source, &pair.target, &seeds)
        .expect("valid inputs");
    let final_time = start.elapsed();
    let final_report = AlignmentReport::evaluate(&final_alignment, &pair.ground_truth, &[1, 10]);

    println!(
        "\n{:<10} {:>8} {:>8} {:>8} {:>10}",
        "method", "p@1", "p@10", "MRR", "time(s)"
    );
    for (name, report, time) in [
        ("HTC", &htc_report, htc_time),
        ("GAlign", &galign_report, galign_time),
        ("FINAL*", &final_report, final_time),
    ] {
        println!(
            "{:<10} {:>8.4} {:>8.4} {:>8.4} {:>10.2}",
            name,
            report.precision(1).unwrap_or(0.0),
            report.precision(10).unwrap_or(0.0),
            report.mrr(),
            time.as_secs_f64()
        );
    }
    println!("(* FINAL receives 10% of the ground truth as supervision)");

    // A concrete downstream use: recommend friends of the matched user.
    let predictions = htc_result.predicted_anchors();
    let user = 3;
    let matched = predictions[user];
    let friends: Vec<usize> = pair.target.graph().neighbors(matched).to_vec();
    println!(
        "\nsource user {user} is matched to target user {matched}; \
         friend-suggestion candidates from the target platform: {friends:?}"
    );
}
