//! Drives an in-process `htc-serve` daemon end to end: starts the server,
//! POSTs two align requests that share a source graph (the second hits the
//! artifact cache and skips counting + training), prints the responses and
//! the `/stats` counters, then shuts the server down cleanly.
//!
//! ```text
//! cargo run --release --example serve_client
//! ```
//!
//! The same exchanges work against a standalone daemon (`cargo run --release
//! --bin htc-serve`) with `curl` — see README.md for the quickstart.

use htc::datasets::{generate_pair, SyntheticPairConfig};
use htc::graph::AttributedNetwork;
use htc::serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Minimal HTTP/1.1 exchange: one request, read to EOF (the server closes
/// each connection), split off the body.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to htc-serve");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

/// Renders a network as the inline JSON spec `POST /align` accepts.
fn network_json(network: &AttributedNetwork) -> String {
    let edges: Vec<String> = network
        .graph()
        .edges()
        .iter()
        .map(|&(u, v)| format!("[{u},{v}]"))
        .collect();
    let rows: Vec<String> = (0..network.num_nodes())
        .map(|u| {
            let row: Vec<String> = network
                .node_attributes(u)
                .iter()
                .map(|v| format!("{v}"))
                .collect();
            format!("[{}]", row.join(","))
        })
        .collect();
    format!(
        "{{\"num_nodes\":{},\"edges\":[{}],\"attributes\":[{}]}}",
        network.num_nodes(),
        edges.join(","),
        rows.join(",")
    )
}

fn main() {
    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.addr();
    println!("htc-serve listening on {addr}");

    // One source catalog graph, two perturbed incoming graphs.
    let pair_a = generate_pair(&SyntheticPairConfig::tiny(16).with_seed(7));
    let pair_b = generate_pair(
        &SyntheticPairConfig::tiny(16)
            .with_seed(7)
            .with_edge_removal(0.08),
    );
    let source = network_json(&pair_a.source);

    for (label, target) in [("first", &pair_a.target), ("second", &pair_b.target)] {
        let body = format!(
            "{{\"preset\":\"fast\",\"epochs\":10,\"source\":{source},\"target\":{}}}",
            network_json(target)
        );
        let (status, response) = request(addr, "POST", "/align", &body);
        assert_eq!(status, 200, "align failed: {response}");
        // Pull a couple of headline fields out of the response JSON.
        let hit = response.contains("\"cache_hit\":true");
        println!(
            "{label} request: HTTP {status}, cache_hit = {hit}, {} response bytes",
            response.len()
        );
    }

    let (status, stats) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    println!("\n/stats:\n{stats}");

    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.join();
    println!("\nserver shut down cleanly");
}
