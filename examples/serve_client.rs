//! Drives an in-process `htc-serve` daemon end to end over **one persistent
//! connection**: starts the server, POSTs two align requests that share a
//! source graph (the second hits the artifact cache and skips counting +
//! training), reads `/stats` — all on the same keep-alive socket — then
//! shuts the server down cleanly.
//!
//! ```text
//! cargo run --release --example serve_client
//! ```
//!
//! The same exchanges work against a standalone daemon (`cargo run --release
//! --bin htc-serve`) with `curl` — see README.md for the quickstart.

use htc::datasets::{generate_pair, SyntheticPairConfig};
use htc::serve::http::Client;
use htc::serve::json::network_spec;
use htc::serve::{Server, ServerConfig};

/// One exchange on the persistent connection; returns (status, body).
fn request(client: &mut Client, method: &str, path: &str, body: &str) -> (u16, String) {
    let response = client.request(method, path, body).expect("exchange");
    (response.status, response.body_str().to_string())
}

fn main() {
    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.addr();
    println!("htc-serve listening on {addr}");

    // One source catalog graph, two perturbed incoming graphs — served over
    // a single keep-alive connection.
    let pair_a = generate_pair(&SyntheticPairConfig::tiny(16).with_seed(7));
    let pair_b = generate_pair(
        &SyntheticPairConfig::tiny(16)
            .with_seed(7)
            .with_edge_removal(0.08),
    );
    let source = network_spec(&pair_a.source);
    let mut client = Client::connect(addr).expect("connect to htc-serve");

    for (label, target) in [("first", &pair_a.target), ("second", &pair_b.target)] {
        let body = format!(
            "{{\"preset\":\"fast\",\"epochs\":10,\"source\":{source},\"target\":{}}}",
            network_spec(target)
        );
        let (status, response) = request(&mut client, "POST", "/align", &body);
        assert_eq!(status, 200, "align failed: {response}");
        // Pull a couple of headline fields out of the response JSON.
        let hit = response.contains("\"cache_hit\":true");
        println!(
            "{label} request: HTTP {status}, cache_hit = {hit}, {} response bytes",
            response.len()
        );
    }

    let (status, stats) = request(&mut client, "GET", "/stats", "");
    assert_eq!(status, 200);
    println!("\n/stats:\n{stats}");
    assert!(
        stats.contains("\"reuse_ratio\":3"),
        "three requests rode one connection: {stats}"
    );

    let (status, _) = request(&mut client, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.join();
    println!("\nserver shut down cleanly (all workers joined)");
}
