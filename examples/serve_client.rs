//! Drives an in-process `htc-serve` daemon end to end over **one persistent
//! connection**: starts the server, POSTs two align requests that share a
//! source graph (the second hits the artifact cache and skips counting +
//! training), reads `/stats` — all on the same keep-alive socket — then
//! shuts the server down cleanly.
//!
//! ```text
//! cargo run --release --example serve_client
//! ```
//!
//! Exchanges go through [`request_with_retry`], which honours the server's
//! back-pressure contract: on 429/503/504 it sleeps for the structured
//! `retry_after_ms` hint (falling back to the `Retry-After` header, then to
//! exponential backoff) with seeded jitter, reconnects if the server closed
//! the socket, and retries.  Against an unloaded server no retry fires, so
//! the keep-alive accounting below still sees exactly three requests on one
//! connection.
//!
//! The same exchanges work against a standalone daemon (`cargo run --release
//! --bin htc-serve`) with `curl` — see README.md for the quickstart.

use htc::datasets::{generate_pair, SyntheticPairConfig};
use htc::serve::http::Client;
use htc::serve::json::{self, network_spec};
use htc::serve::{Server, ServerConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::net::SocketAddr;
use std::time::Duration;

/// Retry budget: enough to ride out a transient overload, small enough that
/// a genuinely saturated server still fails fast.
const MAX_ATTEMPTS: u32 = 4;
const BACKOFF_BASE_MS: u64 = 25;

/// The server's retry hint in milliseconds: the structured JSON body's
/// `retry_after_ms` if present, else the `Retry-After` header (seconds).
fn retry_hint_ms(status: u16, headers: &[(String, String)], body: &str) -> Option<u64> {
    if !matches!(status, 429 | 503 | 504) {
        return None;
    }
    if let Some(ms) = json::parse(body)
        .ok()
        .and_then(|v| v.get("retry_after_ms").and_then(json::Json::as_f64))
    {
        return Some(ms.max(0.0) as u64);
    }
    headers
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case("retry-after"))
        .and_then(|(_, v)| v.trim().parse::<u64>().ok())
        .map(|secs| secs * 1000)
}

/// One exchange with back-pressure handling; returns (status, body).
///
/// Retryable statuses (429/503/504) sleep for the server's hint — jittered
/// by a seeded RNG so runs stay deterministic — and go again; 503 also
/// reconnects, since shed connections are closed server-side.
fn request_with_retry(
    client: &mut Client,
    addr: SocketAddr,
    rng: &mut StdRng,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String) {
    let mut backoff_ms = BACKOFF_BASE_MS;
    for attempt in 1..=MAX_ATTEMPTS {
        let response = client.request(method, path, body).expect("exchange");
        let hint = retry_hint_ms(response.status, &response.headers, response.body_str());
        let Some(hint) = hint else {
            return (response.status, response.body_str().to_string());
        };
        if attempt == MAX_ATTEMPTS {
            return (response.status, response.body_str().to_string());
        }
        let sleep_ms = (hint.max(backoff_ms).max(1) as f64 * rng.gen_range(0.5..1.0)).max(1.0);
        eprintln!(
            "{method} {path}: HTTP {} (attempt {attempt}), retrying in {sleep_ms:.0} ms",
            response.status
        );
        std::thread::sleep(Duration::from_millis(sleep_ms as u64));
        backoff_ms *= 2;
        if response.status == 503 {
            *client = Client::connect(addr).expect("reconnect after shed");
        }
    }
    unreachable!("loop returns on success or final attempt")
}

fn main() {
    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.addr();
    println!("htc-serve listening on {addr}");

    // One source catalog graph, two perturbed incoming graphs — served over
    // a single keep-alive connection.
    let pair_a = generate_pair(&SyntheticPairConfig::tiny(16).with_seed(7));
    let pair_b = generate_pair(
        &SyntheticPairConfig::tiny(16)
            .with_seed(7)
            .with_edge_removal(0.08),
    );
    let source = network_spec(&pair_a.source);
    let mut client = Client::connect(addr).expect("connect to htc-serve");
    let mut rng = StdRng::seed_from_u64(0xc11e_2177);

    for (label, target) in [("first", &pair_a.target), ("second", &pair_b.target)] {
        let body = format!(
            "{{\"preset\":\"fast\",\"epochs\":10,\"source\":{source},\"target\":{}}}",
            network_spec(target)
        );
        let (status, response) =
            request_with_retry(&mut client, addr, &mut rng, "POST", "/align", &body);
        assert_eq!(status, 200, "align failed: {response}");
        // Pull a couple of headline fields out of the response JSON.
        let hit = response.contains("\"cache_hit\":true");
        println!(
            "{label} request: HTTP {status}, cache_hit = {hit}, {} response bytes",
            response.len()
        );
    }

    let (status, stats) = request_with_retry(&mut client, addr, &mut rng, "GET", "/stats", "");
    assert_eq!(status, 200);
    println!("\n/stats:\n{stats}");
    assert!(
        stats.contains("\"reuse_ratio\":3"),
        "three requests rode one connection: {stats}"
    );

    let (status, _) = request_with_retry(&mut client, addr, &mut rng, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.join();
    println!("\nserver shut down cleanly (all workers joined)");
}
